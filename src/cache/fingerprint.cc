#include "cache/fingerprint.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "fault/scenario.hh"
#include "floorplan/power8.hh"
#include "sim/config.hh"
#include "sim/result.hh"
#include "workload/profile.hh"

namespace tg {
namespace cache {

namespace {

/** splitmix64 finalizer: the full-avalanche mixing step. */
std::uint64_t mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Domain-separation tags fed before each typed payload. */
constexpr std::uint64_t kTagU64 = 0x01;
constexpr std::uint64_t kTagF64 = 0x02;
constexpr std::uint64_t kTagStr = 0x03;
constexpr std::uint64_t kTagFp = 0x04;

} // namespace

std::string Fingerprint::hex() const
{
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return std::string(buf);
}

void Hasher::absorb(std::uint64_t word)
{
    ++n;
    a = mix(a ^ word);
    b = mix(b + (word ^ (n * 0x9e3779b97f4a7c15ull)));
}

Hasher &Hasher::u64(std::uint64_t v)
{
    absorb(kTagU64);
    absorb(v);
    return *this;
}

Hasher &Hasher::f64(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v, "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof bits);
    absorb(kTagF64);
    absorb(bits);
    return *this;
}

Hasher &Hasher::str(const std::string &s)
{
    absorb(kTagStr);
    absorb(s.size());
    // Pack 8 bytes per word, zero-padded tail; the length word above
    // keeps "ab"+"\0..." distinct from "ab\0...".
    for (std::size_t i = 0; i < s.size(); i += 8) {
        std::uint64_t word = 0;
        const std::size_t chunk = std::min<std::size_t>(8, s.size() - i);
        std::memcpy(&word, s.data() + i, chunk);
        absorb(word);
    }
    return *this;
}

Hasher &Hasher::fp(const Fingerprint &f)
{
    absorb(kTagFp);
    absorb(f.hi);
    absorb(f.lo);
    return *this;
}

Fingerprint Hasher::digest() const
{
    // Finalize a copy so the Hasher may keep absorbing; fold the
    // length in so prefixes of a stream never alias its digests.
    Fingerprint out;
    out.hi = mix(a ^ mix(n));
    out.lo = mix(b + mix(n ^ 0x5851f42d4c957f2dull));
    if (out.hi == 0 && out.lo == 0)
        out.lo = 1; // reserve {0,0} as "no fingerprint"
    return out;
}

Fingerprint chipFingerprint(const floorplan::Chip &chip)
{
    Hasher h;
    h.str("tg.chip.v1");

    const floorplan::Floorplan &p = chip.plan;
    h.f64(p.width()).f64(p.height());

    h.u64(p.blocks().size());
    for (const floorplan::Block &blk : p.blocks()) {
        h.str(blk.name)
            .u64(static_cast<std::uint64_t>(blk.kind))
            .f64(blk.rect.x)
            .f64(blk.rect.y)
            .f64(blk.rect.w)
            .f64(blk.rect.h)
            .i64(blk.domain)
            .i64(blk.coreId);
    }

    h.u64(p.vrs().size());
    for (const floorplan::VrSite &vr : p.vrs()) {
        h.str(vr.name)
            .f64(vr.rect.x)
            .f64(vr.rect.y)
            .f64(vr.rect.w)
            .f64(vr.rect.h)
            .i64(vr.domain)
            .i64(vr.hostBlock)
            .boolean(vr.memorySide);
    }

    h.u64(p.domains().size());
    for (const floorplan::VddDomain &d : p.domains()) {
        h.i64(d.id).u64(static_cast<std::uint64_t>(d.kind)).str(d.name);
        h.u64(d.blocks.size());
        for (int b : d.blocks)
            h.i64(b);
        h.u64(d.vrs.size());
        for (int v : d.vrs)
            h.i64(v);
    }

    const floorplan::ChipParams &cp = chip.params;
    h.f64(cp.technologyNm)
        .f64(cp.frequencyHz)
        .f64(cp.tdp)
        .f64(cp.vdd)
        .f64(cp.areaMm2)
        .i64(cp.cores)
        .i64(cp.issueWidth);

    return h.digest();
}

Fingerprint configFingerprint(const sim::SimConfig &cfg)
{
    Hasher h;
    h.str("tg.config.v1");

    h.u64(static_cast<std::uint64_t>(cfg.regulator))
        .f64(cfg.decisionInterval)
        .i64(cfg.noiseSamples)
        .i64(cfg.noiseCyclesTotal)
        .i64(cfg.noiseWarmupCycles)
        .i64(cfg.profilingEpochs)
        .f64(cfg.practicalDemandMargin)
        .i64(cfg.practicalHeadroomVrs)
        .u64(cfg.seed);
    // Deliberately NOT hashed (bit-invisible, see header): jobs,
    // noiseBatchWidth, coalesceNoiseEpochs, cacheDir, memoizeResults,
    // pdnParams.factorCacheCapacity.

    const thermal::ThermalParams &t = cfg.thermalParams;
    h.i64(t.gridW)
        .i64(t.gridH)
        .i64(t.spreaderN)
        .f64(t.dieThickness)
        .f64(t.kSilicon)
        .f64(t.cvSilicon)
        .f64(t.timThickness)
        .f64(t.kTim)
        .f64(t.spreaderThickness)
        .f64(t.kCopper)
        .f64(t.cvCopper)
        .f64(t.spreaderSide)
        .f64(t.rConvection)
        .f64(t.vrCouplingResistance)
        .f64(t.ambient)
        .f64(t.step);

    h.fp(powerParamsFingerprint(cfg.powerParams));

    const pdn::PdnParams &pd = cfg.pdnParams;
    h.f64(pd.nodePitch)
        .f64(pd.sheetResistance)
        .f64(pd.decapPerMm2)
        .f64(pd.gridInductancePerM)
        .f64(pd.cycleTime)
        .f64(pd.emergencyFrac);

    const sensors::SensorParams &sn = cfg.sensorParams;
    h.f64(sn.delay).f64(sn.quantization).f64(sn.noiseSigma);

    const sensors::PredictorParams &pr = cfg.predictorParams;
    h.f64(pr.sensitivity).f64(pr.falseAlarmRate);

    const sensors::HealthParams &hl = cfg.healthParams;
    h.f64(hl.minPlausible)
        .f64(hl.maxPlausible)
        .f64(hl.maxStep)
        .f64(hl.freezeEps)
        .i64(hl.freezeReads)
        .f64(hl.freezeNeighbourMove)
        .f64(hl.neighbourTolerance)
        .f64(hl.readmitTolerance)
        .i64(hl.readmitReads);

    return h.digest();
}

Fingerprint powerParamsFingerprint(const power::PowerParams &pw)
{
    Hasher h;
    h.str("tg.power-params.v1");
    h.f64(pw.densityIfu)
        .f64(pw.densityIsu)
        .f64(pw.densityExu)
        .f64(pw.densityLsu)
        .f64(pw.densityL2)
        .f64(pw.densityL3)
        .f64(pw.densityNoc)
        .f64(pw.densityMc)
        .f64(pw.staticShareAt80C)
        .f64(pw.leakageCalibTemp)
        .f64(pw.leakageDoubling)
        .f64(pw.logicLeakageBoost)
        .f64(pw.memoryLeakageDerate);
    return h.digest();
}

Fingerprint profileFingerprint(const workload::BenchmarkProfile &p)
{
    Hasher h;
    h.str("tg.profile.v1");
    h.str(p.name)
        .str(p.fullName)
        .f64(p.meanUtilization)
        .f64(p.phaseAmplitude)
        .f64(p.phasePeriodUs)
        .f64(p.jitterSigma)
        .f64(p.imbalance)
        .f64(p.memoryIntensity)
        .f64(p.didtActivity)
        .f64(p.roiDurationUs)
        .f64(p.mix.fracInt)
        .f64(p.mix.fracFp)
        .f64(p.mix.fracLoad)
        .f64(p.mix.fracStore)
        .f64(p.mix.fracBranch)
        .f64(p.misses.l1)
        .f64(p.misses.l2)
        .f64(p.misses.l3);
    return h.digest();
}

Fingerprint scenarioFingerprint(const fault::FaultScenario &scenario)
{
    Hasher h;
    h.str("tg.scenario.v1");
    h.u64(scenario.seed());
    h.u64(scenario.events().size());
    for (const fault::FaultEvent &e : scenario.events()) {
        h.u64(static_cast<std::uint64_t>(e.kind))
            .i64(e.target)
            .f64(e.start)
            .f64(e.duration)
            .f64(e.magnitude);
    }
    return h.digest();
}

Fingerprint recordOptionsFingerprint(const sim::RecordOptions &opts)
{
    Hasher h;
    h.str("tg.record.v1");
    h.boolean(opts.timeSeries)
        .i64(opts.trackVr)
        .boolean(opts.heatmap)
        .boolean(opts.noiseTrace)
        .i64(opts.noiseSamplesOverride);
    // A null scenario and an empty one take the identical clean run
    // path in Simulation::runMixed, so they must hash alike.
    const bool faulted =
        opts.faultScenario != nullptr && !opts.faultScenario->empty();
    h.boolean(faulted);
    if (faulted)
        h.fp(scenarioFingerprint(*opts.faultScenario));
    return h.digest();
}

} // namespace cache
} // namespace tg
