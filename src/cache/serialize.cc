#include "cache/serialize.hh"

#include "sim/result.hh"

namespace tg {
namespace cache {

namespace {

/** Version tag leading every encoded RunResult payload. */
constexpr std::uint32_t kRunResultMagic = 0x54475231; // "TGR1"

} // namespace

std::vector<std::uint8_t> encodeRunResult(const sim::RunResult &r)
{
    ByteWriter w;
    w.u32(kRunResultMagic);

    w.str(r.benchmark);
    w.u32(static_cast<std::uint32_t>(r.policy));

    w.f64(r.maxTmax);
    w.str(r.hottestSpot);
    w.f64(r.maxGradient);
    w.f64(r.maxNoiseFrac);
    w.f64(r.emergencyFrac);

    w.f64(r.avgRegulatorLoss);
    w.f64(r.avgEta);
    w.f64(r.avgActiveVrs);
    w.f64(r.meanPower);
    w.i64(r.overrideCount);

    w.f64vec(r.timeUs);
    w.f64vec(r.totalPowerW);
    w.f64vec(r.activeVrs);

    w.f64vec(r.trackedVrTemp);
    w.i32vec(r.trackedVrOn);

    w.f64vec(r.heatmap);
    w.i64(r.heatmapW);
    w.i64(r.heatmapH);
    w.f64(r.heatmapTimeUs);

    w.f64vec(r.noiseTrace);
    w.i64(r.noiseTraceDomain);
    w.f64(r.noiseTraceTimeUs);

    w.f64vec(r.vrActivity);
    w.f64vec(r.vrAging);
    w.f64(r.agingImbalance);

    const sim::ResilienceStats &s = r.resilience;
    w.i64(s.scheduledFaults);
    w.i64(s.faultedEpochs);
    w.i64(s.degradedDecisions);
    w.i64(s.floorEngagements);
    w.i64(s.underSuppliedDecisions);
    w.i64(s.quarantineEvents);
    w.i64(s.quarantinedEpochs);
    w.i64(s.peakQuarantined);
    w.f64(s.detectionLatency);
    w.i64(s.alertsSuppressed);
    w.i64(s.alertsInjected);
    w.i64(s.emergencyCyclesFaulted);
    w.i64(s.emergencyCyclesClean);

    return w.take();
}

bool decodeRunResult(const std::uint8_t *data, std::size_t size,
                     sim::RunResult &out)
{
    ByteReader r(data, size);
    if (r.u32() != kRunResultMagic)
        return false;

    out.benchmark = r.str();
    out.policy = static_cast<core::PolicyKind>(r.u32());

    out.maxTmax = r.f64();
    out.hottestSpot = r.str();
    out.maxGradient = r.f64();
    out.maxNoiseFrac = r.f64();
    out.emergencyFrac = r.f64();

    out.avgRegulatorLoss = r.f64();
    out.avgEta = r.f64();
    out.avgActiveVrs = r.f64();
    out.meanPower = r.f64();
    out.overrideCount = r.i64();

    if (!r.f64vec(out.timeUs) || !r.f64vec(out.totalPowerW) ||
        !r.f64vec(out.activeVrs) || !r.f64vec(out.trackedVrTemp) ||
        !r.i32vec(out.trackedVrOn) || !r.f64vec(out.heatmap))
        return false;
    out.heatmapW = static_cast<int>(r.i64());
    out.heatmapH = static_cast<int>(r.i64());
    out.heatmapTimeUs = r.f64();

    if (!r.f64vec(out.noiseTrace))
        return false;
    out.noiseTraceDomain = static_cast<int>(r.i64());
    out.noiseTraceTimeUs = r.f64();

    if (!r.f64vec(out.vrActivity) || !r.f64vec(out.vrAging))
        return false;
    out.agingImbalance = r.f64();

    sim::ResilienceStats &s = out.resilience;
    s.scheduledFaults = r.i64();
    s.faultedEpochs = r.i64();
    s.degradedDecisions = r.i64();
    s.floorEngagements = r.i64();
    s.underSuppliedDecisions = r.i64();
    s.quarantineEvents = r.i64();
    s.quarantinedEpochs = r.i64();
    s.peakQuarantined = static_cast<int>(r.i64());
    s.detectionLatency = r.f64();
    s.alertsSuppressed = r.i64();
    s.alertsInjected = r.i64();
    s.emergencyCyclesFaulted = r.i64();
    s.emergencyCyclesClean = r.i64();

    return r.exhausted();
}

std::size_t runResultBytes(const sim::RunResult &r)
{
    std::size_t b = sizeof(sim::RunResult);
    b += r.benchmark.size() + r.hottestSpot.size();
    b += 8 * (r.timeUs.size() + r.totalPowerW.size() +
              r.activeVrs.size() + r.trackedVrTemp.size() +
              r.heatmap.size() + r.noiseTrace.size() +
              r.vrActivity.size() + r.vrAging.size());
    b += sizeof(int) * r.trackedVrOn.size();
    return b;
}

} // namespace cache
} // namespace tg
