#include "cache/disk.hh"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>

#include "common/bytes.hh"
#include "common/io.hh"

#ifdef __unix__
#include <unistd.h>
#endif

namespace tg {
namespace cache {

namespace {

constexpr std::uint32_t kMagic = 0x31434754; // "TGC1" little-endian
constexpr std::uint32_t kFormatVersion = 1;

void appendU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void appendU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t readU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t readU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Monotonic per-process token for collision-free temp names. */
std::uint64_t tempToken()
{
    static std::atomic<std::uint64_t> counter{0};
    std::uint64_t pid = 0;
#ifdef __unix__
    pid = static_cast<std::uint64_t>(::getpid());
#endif
    return (pid << 20) ^ counter.fetch_add(1);
}

} // namespace

DiskTier::DiskTier(std::string dir, ArtifactStore *stats)
    : root(std::move(dir)), counters(stats ? stats : &store())
{
    if (!active())
        return;
    // Crash hygiene, once per (process, directory): sweep aged
    // orphans left by writers that died between temp write and
    // rename. Once is enough — new orphans can only come from crashes
    // after this point, which the *next* process cleans up.
    static std::mutex mu;
    static std::set<std::string> swept;
    bool first;
    {
        std::lock_guard<std::mutex> lock(mu);
        first = swept.insert(root).second;
    }
    if (first)
        sweepOrphans(kOrphanMinAge);
}

std::size_t DiskTier::sweepOrphans(std::chrono::seconds minAge) const
{
    if (!active())
        return 0;
    namespace fs = std::filesystem;
    std::error_code ec;
    const auto now = fs::file_time_type::clock::now();
    std::size_t removed = 0;
    for (const auto &entry : fs::directory_iterator(root, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        const std::string name = entry.path().filename().string();
        // Temp names are "<final>.tmp-<16 hex>"; anything else in the
        // directory is either a published artifact or not ours.
        const std::size_t at = name.rfind(".tmp-");
        if (at == std::string::npos || name.size() != at + 5 + 16)
            continue;
        const auto mtime = entry.last_write_time(ec);
        if (ec) {
            ec.clear();
            continue;
        }
        if (now - mtime < minAge)
            continue; // possibly a live concurrent writer's
        if (fs::remove(entry.path(), ec) && !ec)
            ++removed;
        ec.clear();
    }
    if (removed)
        counters->noteDiskTmpSwept(removed);
    return removed;
}

std::string DiskTier::pathFor(ArtifactKind kind,
                              const Fingerprint &key) const
{
    return root + "/" + artifactKindName(kind) + "-" + key.hex() +
           ".tgc";
}

bool DiskTier::load(ArtifactKind kind, const Fingerprint &key,
                    std::vector<std::uint8_t> &payload) const
{
    if (!active())
        return false;
    std::ifstream in(pathFor(kind, key), std::ios::binary);
    if (!in) {
        counters->noteDiskMiss();
        return false;
    }
    std::vector<std::uint8_t> file(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    in.close();

    // Fixed header through key.lo, then two length-prefixed blocks,
    // then the trailing checksum. Validate sizes before every read.
    const std::size_t kFixed = 4 + 4 + 4 + 8 + 8;
    if (file.size() < kFixed + 8 + 8 + 8 ||
        readU32(file.data()) != kMagic ||
        readU32(file.data() + 4) != kFormatVersion ||
        readU32(file.data() + 8) != static_cast<std::uint32_t>(kind) ||
        readU64(file.data() + 12) != key.hi ||
        readU64(file.data() + 20) != key.lo) {
        counters->noteDiskReject();
        return false;
    }
    std::size_t pos = kFixed;
    const std::uint64_t provLen = readU64(file.data() + pos);
    pos += 8;
    if (provLen > file.size() - pos - 16) {
        counters->noteDiskReject();
        return false;
    }
    pos += static_cast<std::size_t>(provLen);
    const std::uint64_t payLen = readU64(file.data() + pos);
    pos += 8;
    if (payLen != file.size() - pos - 8) {
        counters->noteDiskReject();
        return false;
    }
    const std::size_t payloadAt = pos;
    pos += static_cast<std::size_t>(payLen);
    const std::uint64_t want = readU64(file.data() + pos);
    if (bytes::fnv1a(file.data(), pos) != want) {
        counters->noteDiskReject();
        return false;
    }
    payload.assign(file.begin() + static_cast<std::ptrdiff_t>(payloadAt),
                   file.begin() + static_cast<std::ptrdiff_t>(pos));
    counters->noteDiskHit();
    return true;
}

bool DiskTier::save(ArtifactKind kind, const Fingerprint &key,
                    const std::vector<std::uint8_t> &payload,
                    const std::string &provenance) const
{
    if (!active())
        return false;
    // Chaos gate: a simulated ENOSPC fails the save exactly like a
    // full disk — callers fall back to uncached operation.
    if (!io::chaosDiskWriteAllowed())
        return false;

    std::error_code ec;
    std::filesystem::create_directories(root, ec);
    if (ec)
        return false;

    std::vector<std::uint8_t> file;
    file.reserve(payload.size() + provenance.size() + 64);
    appendU32(file, kMagic);
    appendU32(file, kFormatVersion);
    appendU32(file, static_cast<std::uint32_t>(kind));
    appendU64(file, key.hi);
    appendU64(file, key.lo);
    appendU64(file, provenance.size());
    file.insert(file.end(), provenance.begin(), provenance.end());
    appendU64(file, payload.size());
    file.insert(file.end(), payload.begin(), payload.end());
    appendU64(file, bytes::fnv1a(file.data(), file.size()));

    char token[32];
    std::snprintf(token, sizeof token, ".tmp-%016llx",
                  static_cast<unsigned long long>(tempToken()));
    const std::string finalPath = pathFor(kind, key);
    const std::string tmpPath = finalPath + token;
    {
        std::ofstream out(tmpPath, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(reinterpret_cast<const char *>(file.data()),
                  static_cast<std::streamsize>(file.size()));
        if (!out) {
            out.close();
            std::remove(tmpPath.c_str());
            return false;
        }
    }
    if (std::rename(tmpPath.c_str(), finalPath.c_str()) != 0) {
        std::remove(tmpPath.c_str());
        return false;
    }
    counters->noteDiskWrite();
    return true;
}

} // namespace cache
} // namespace tg
