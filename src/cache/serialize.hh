/**
 * @file
 * Bit-exact binary serialization of cacheable artifacts.
 *
 * The disk tier must round-trip a RunResult without perturbing a
 * single bit (a reloaded artifact stands in for a recompute), so
 * doubles travel as their raw 64-bit patterns — never through text
 * formatting. The encoding is little-endian, versioned via the
 * per-artifact magic tags, and host-independent for the fixed-width
 * types used.
 */

#ifndef TG_CACHE_SERIALIZE_HH
#define TG_CACHE_SERIALIZE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tg {

namespace sim {
struct RunResult;
}

namespace cache {

/** Append-only little-endian byte sink. */
class ByteWriter
{
  public:
    void u8(std::uint8_t v) { buf.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(long long v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v);
    void str(const std::string &s);
    void f64vec(const std::vector<double> &v);
    void i32vec(const std::vector<int> &v);

    const std::vector<std::uint8_t> &bytes() const { return buf; }
    std::vector<std::uint8_t> take() { return std::move(buf); }

  private:
    std::vector<std::uint8_t> buf;
};

/**
 * Bounds-checked reader over a byte span. Every accessor sets the
 * sticky failure flag instead of reading past the end, so a
 * truncated payload decodes to `ok() == false`, never to UB.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : p(data), n(size)
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    long long i64() { return static_cast<long long>(u64()); }
    double f64();
    std::string str();
    bool f64vec(std::vector<double> &out);
    bool i32vec(std::vector<int> &out);

    bool ok() const { return !failed; }
    /** True when every byte was consumed (trailing garbage check). */
    bool exhausted() const { return ok() && pos == n; }

  private:
    bool take(std::size_t count, const std::uint8_t **out);

    const std::uint8_t *p;
    std::size_t n;
    std::size_t pos = 0;
    bool failed = false;
};

/** Serialize a RunResult (every field, series included). */
std::vector<std::uint8_t> encodeRunResult(const sim::RunResult &r);

/**
 * Decode into `out`. Returns false (leaving `out` unspecified) on
 * malformed, truncated, or over-long input.
 */
bool decodeRunResult(const std::uint8_t *data, std::size_t size,
                     sim::RunResult &out);

/** Resident-size estimate of a RunResult for store budgeting. */
std::size_t runResultBytes(const sim::RunResult &r);

} // namespace cache
} // namespace tg

#endif // TG_CACHE_SERIALIZE_HH
