/**
 * @file
 * Bit-exact binary serialization of cacheable artifacts.
 *
 * The disk tier must round-trip a RunResult without perturbing a
 * single bit (a reloaded artifact stands in for a recompute), so
 * doubles travel as their raw 64-bit patterns — never through text
 * formatting. The encoding is little-endian, versioned via the
 * per-artifact magic tags, and host-independent for the fixed-width
 * types used.
 *
 * The codec primitives (ByteWriter/ByteReader) live in
 * common/bytes.hh so the shard engine's wire protocol shares them;
 * the aliases below keep existing cache-side users spelled the same.
 */

#ifndef TG_CACHE_SERIALIZE_HH
#define TG_CACHE_SERIALIZE_HH

#include <cstdint>
#include <vector>

#include "common/bytes.hh"

namespace tg {

namespace sim {
struct RunResult;
}

namespace cache {

using bytes::ByteReader;
using bytes::ByteWriter;

/** Serialize a RunResult (every field, series included). */
std::vector<std::uint8_t> encodeRunResult(const sim::RunResult &r);

/**
 * Decode into `out`. Returns false (leaving `out` unspecified) on
 * malformed, truncated, or over-long input.
 */
bool decodeRunResult(const std::uint8_t *data, std::size_t size,
                     sim::RunResult &out);

/** Resident-size estimate of a RunResult for store budgeting. */
std::size_t runResultBytes(const sim::RunResult &r);

} // namespace cache
} // namespace tg

#endif // TG_CACHE_SERIALIZE_HH
