/**
 * @file
 * Sharded, thread-safe, in-memory content-addressed artifact store.
 *
 * Artifacts are immutable once inserted (shared_ptr<const T>), so a
 * stored object may be handed to any number of concurrent readers —
 * the same read-only-after-build property that lets sweep workers
 * share a PowerTrace. The store is sharded 16 ways by the low
 * fingerprint bits with one mutex per shard, so concurrent sweep
 * workers probing different keys almost never contend; each shard
 * runs LRU eviction against its slice of the byte budget.
 *
 * Soundness: keys are canonical content fingerprints over every
 * result-bit-relevant input (cache/fingerprint.hh), and every
 * producer is bit-exactly deterministic, so replacing a recompute
 * with a stored artifact cannot change any output bit. A racing
 * double-build of the same key is therefore also harmless: both
 * builders produce identical bytes and either copy may win.
 *
 * The process-wide singleton store() honours:
 *  - TG_CACHE=0       disable entirely (every probe misses, puts drop)
 *  - TG_CACHE_MEM_MB  in-memory byte budget (default 512 MiB)
 */

#ifndef TG_CACHE_STORE_HH
#define TG_CACHE_STORE_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "cache/fingerprint.hh"

namespace tg {
namespace cache {

/** Artifact classes kept in the store (separate key namespaces). */
enum class ArtifactKind
{
    PowerTrace, //!< power::PowerTrace (profile x power model x epochs)
    Predictor,  //!< thermal-predictor fit (chip x config)
    PdnBase,    //!< PDN base factorisations + transfer resistances
    RunResult,  //!< whole sim::RunResult (full run tuple)
};
constexpr int kArtifactKinds = 4;

/** Display name ("power-trace", ...). */
const char *artifactKindName(ArtifactKind kind);

/** Aggregated counters (exec::Stats-style snapshot). */
struct StoreStats
{
    struct PerKind
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t inserts = 0;
        std::uint64_t bytes = 0; //!< currently resident payload bytes
        std::uint64_t evictions = 0;
    };
    std::array<PerKind, kArtifactKinds> kind{};
    std::uint64_t evictions = 0; //!< sum over kinds (kept for display)

    // Disk-tier counters (recorded by DiskTier via the store so one
    // snapshot covers both tiers).
    std::uint64_t diskHits = 0;
    std::uint64_t diskMisses = 0;
    std::uint64_t diskWrites = 0;
    std::uint64_t diskRejects = 0; //!< corrupt/truncated files refused
    std::uint64_t diskTmpSwept = 0; //!< orphaned .tmp-* files removed

    std::uint64_t hitsTotal() const;
    std::uint64_t missesTotal() const;
    std::uint64_t bytesTotal() const;

    /** One-line human-readable summary for bench/CLI reporting. */
    std::string describe() const;
};

/**
 * The in-memory tier. All methods are thread-safe.
 *
 * Payloads are type-erased; each ArtifactKind must be used with one
 * consistent T (enforced by the typed accessors being the only
 * callers in the tree).
 */
class ArtifactStore
{
  public:
    explicit ArtifactStore(std::size_t capacity_bytes = kDefaultCapacity);

    /** ~512 MiB: a full 14x8 sweep's artifacts fit comfortably. */
    static constexpr std::size_t kDefaultCapacity =
        std::size_t(512) << 20;

    /** Probe; null on miss (or when disabled). Bumps hit/miss. */
    std::shared_ptr<const void> getRaw(ArtifactKind kind,
                                       const Fingerprint &key);

    /**
     * Insert (no-op when disabled). `bytes` is the payload's resident
     * size for budget accounting. Re-inserting an existing key keeps
     * the resident copy (first write wins — both are identical by the
     * determinism argument above).
     */
    void putRaw(ArtifactKind kind, const Fingerprint &key,
                std::shared_ptr<const void> value, std::size_t bytes);

    template <class T>
    std::shared_ptr<const T> get(ArtifactKind kind, const Fingerprint &key)
    {
        return std::static_pointer_cast<const T>(getRaw(kind, key));
    }

    template <class T>
    void put(ArtifactKind kind, const Fingerprint &key,
             std::shared_ptr<const T> value, std::size_t bytes)
    {
        putRaw(kind, key, std::static_pointer_cast<const void>(value),
               bytes);
    }

    /**
     * Probe, else build and insert. `build` returns
     * shared_ptr<const T>; `bytes(const T&)` sizes it for the budget.
     * The build runs outside every shard lock, so concurrent
     * same-key builders may race — harmless (identical results).
     */
    template <class T, class Build, class Bytes>
    std::shared_ptr<const T> getOrBuild(ArtifactKind kind,
                                        const Fingerprint &key,
                                        Build &&build, Bytes &&bytes)
    {
        if (auto hit = get<T>(kind, key))
            return hit;
        std::shared_ptr<const T> made = build();
        if (made)
            put<T>(kind, key, made, bytes(*made));
        return made;
    }

    /** Drop everything (counters survive; see resetStats). */
    void clear();

    /** Runtime kill switch; a disabled store misses and drops puts. */
    void setEnabled(bool on) { enabledFlag.store(on); }
    bool enabled() const { return enabledFlag.load(); }

    /** Change the byte budget (evicts immediately if over). */
    void setCapacityBytes(std::size_t bytes);
    std::size_t capacityBytes() const { return capacity.load(); }

    StoreStats stats() const;
    void resetStats();

    // Disk-tier counter hooks (called by DiskTier).
    void noteDiskHit() { ++diskHitCount; }
    void noteDiskMiss() { ++diskMissCount; }
    void noteDiskWrite() { ++diskWriteCount; }
    void noteDiskReject() { ++diskRejectCount; }
    void noteDiskTmpSwept(std::uint64_t n) { diskTmpSweptCount += n; }

  private:
    static constexpr int kShards = 16;

    struct Key
    {
        ArtifactKind kind;
        Fingerprint fp;
        bool operator==(const Key &o) const
        {
            return kind == o.kind && fp == o.fp;
        }
    };
    struct KeyHash
    {
        std::size_t operator()(const Key &k) const
        {
            // fp is already avalanche-mixed; fold the kind in.
            return static_cast<std::size_t>(
                k.fp.lo ^ (k.fp.hi * 0x9e3779b97f4a7c15ull) ^
                static_cast<std::uint64_t>(k.kind));
        }
    };

    struct Entry
    {
        Key key;
        std::shared_ptr<const void> value;
        std::size_t bytes = 0;
    };

    struct Shard
    {
        std::mutex mu;
        std::list<Entry> lru; //!< front = most recently used
        std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map;
        std::size_t bytes = 0;
    };

    Shard &shardFor(const Fingerprint &key)
    {
        return shards[key.lo & (kShards - 1)];
    }

    /** Evict LRU entries of one shard down to its budget slice. */
    void evictLocked(Shard &s, std::size_t shard_budget);

    std::array<Shard, kShards> shards;
    std::atomic<bool> enabledFlag{true};
    std::atomic<std::size_t> capacity;

    // Counters are relaxed atomics: exactness under contention is not
    // worth a lock on the hit path; snapshots are advisory.
    struct KindCounters
    {
        std::atomic<std::uint64_t> hits{0};
        std::atomic<std::uint64_t> misses{0};
        std::atomic<std::uint64_t> inserts{0};
        std::atomic<std::uint64_t> bytes{0};
        std::atomic<std::uint64_t> evictions{0};
    };
    std::array<KindCounters, kArtifactKinds> counters;
    std::atomic<std::uint64_t> evictionCount{0};
    std::atomic<std::uint64_t> diskHitCount{0};
    std::atomic<std::uint64_t> diskMissCount{0};
    std::atomic<std::uint64_t> diskWriteCount{0};
    std::atomic<std::uint64_t> diskRejectCount{0};
    std::atomic<std::uint64_t> diskTmpSweptCount{0};
};

/**
 * Process-wide store shared by every Simulation/sweep in the
 * process. Construction honours TG_CACHE / TG_CACHE_MEM_MB.
 */
ArtifactStore &store();

} // namespace cache
} // namespace tg

#endif // TG_CACHE_STORE_HH
