/**
 * @file
 * Optional on-disk cache tier.
 *
 * A DiskTier persists encoded artifacts under a directory (from
 * `SimConfig::cacheDir` or the `TG_CACHE_DIR` environment variable)
 * so warm state survives the process: repeated figure/bench CLIs and
 * future tg::serve workers answer from disk instead of simulating.
 *
 * File format (little-endian):
 *   u32 magic "TGC1" | u32 format version | u32 artifact kind
 *   | u64 key.hi | u64 key.lo | provenance string (u64 len + bytes)
 *   | u64 payload length | payload bytes
 *   | u64 FNV-1a checksum over everything before this field
 *
 * Integrity: load() re-derives the checksum and verifies magic,
 * version, kind, key, and lengths; any mismatch (bit rot, torn or
 * truncated writes, foreign files) rejects the file — the caller
 * falls back to recompute and the reject is counted. Writes go to a
 * process-unique temp name in the same directory and are published
 * with std::rename, which POSIX makes atomic: concurrent writers of
 * the same key race benignly (identical contents) and readers never
 * observe a half-written file.
 *
 * Crash hygiene: a process killed between the temp write and the
 * rename leaves a `.tmp-*` orphan behind. The first DiskTier built
 * for a directory in a process sweeps orphans older than a safety
 * margin (a *young* temp file may belong to a concurrent live
 * writer), so a cache directory never accumulates crash debris.
 */

#ifndef TG_CACHE_DISK_HH
#define TG_CACHE_DISK_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/fingerprint.hh"
#include "cache/store.hh"

namespace tg {
namespace cache {

class DiskTier
{
  public:
    /**
     * @param dir   cache directory (created on first save)
     * @param stats counter sink; defaults to the process store so one
     *              stats snapshot covers both tiers
     */
    explicit DiskTier(std::string dir, ArtifactStore *stats = nullptr);

    /** Whether a directory was configured at all. */
    bool active() const { return !root.empty(); }

    /**
     * Read and verify the artifact; false on absent or rejected
     * (corrupt/truncated/mismatched) files. Counts hit/miss/reject.
     */
    bool load(ArtifactKind kind, const Fingerprint &key,
              std::vector<std::uint8_t> &payload) const;

    /**
     * Persist via temp-file + atomic rename; false on I/O failure
     * (the cache stays best-effort: callers proceed uncached).
     */
    bool save(ArtifactKind kind, const Fingerprint &key,
              const std::vector<std::uint8_t> &payload,
              const std::string &provenance) const;

    /** Final path of an artifact ("<dir>/<kind>-<keyhex>.tgc"). */
    std::string pathFor(ArtifactKind kind, const Fingerprint &key) const;

    /**
     * Remove `.tmp-*` orphans under the root older than `minAge`
     * (never the fresh temp files of concurrent writers). Returns the
     * number removed and counts them in StoreStats::diskTmpSwept.
     * Runs automatically — age-gated by kOrphanMinAge — the first
     * time a process opens a given directory.
     */
    std::size_t sweepOrphans(std::chrono::seconds minAge) const;

    /** Auto-sweep age gate: generous against concurrent writers. */
    static constexpr std::chrono::seconds kOrphanMinAge{15 * 60};

  private:
    std::string root;
    ArtifactStore *counters;
};

} // namespace cache
} // namespace tg

#endif // TG_CACHE_DISK_HH
