/**
 * @file
 * The persistent sweep daemon.
 *
 *     tg_serve [--socket PATH] [--jobs N] [--contexts N]
 *              [--queue-depth N] [--busy-retry MS] [--verbose]
 *
 * Listens on a Unix-domain socket (--socket, else $TG_SERVE_SOCKET,
 * else /tmp/tg_serve.<uid>.sock) and answers tg_client requests until
 * a client sends Shutdown or the process receives SIGINT/SIGTERM —
 * both drain queued requests and flush replies before exiting.
 *
 * --queue-depth bounds the admission queue: requests beyond it get
 * an immediate busy reply carrying the --busy-retry hint instead of
 * waiting in an unbounded line.
 *
 * The daemon's value is what stays warm between requests: thermal and
 * PDN factorisations, the calibrated predictor, per-worker Simulation
 * contexts and the in-memory ArtifactStore (plus the TG_CACHE_DIR
 * disk tier when configured). See DESIGN.md "Sweep server".
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "serve/server.hh"

namespace {

tg::serve::Server *g_server = nullptr;

void onSignal(int)
{
    // requestStop is async-signal-safe: an atomic store plus a
    // self-pipe write.
    if (g_server)
        g_server->requestStop();
}

int usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--socket PATH] [--jobs N] "
                 "[--contexts N] [--queue-depth N] "
                 "[--busy-retry MS] [--verbose]\n",
                 argv0);
    return 2;
}

} // namespace

int main(int argc, char **argv)
{
    tg::serve::ServerOptions options;
    std::string socketArg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc) {
            socketArg = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            options.jobs = std::atoi(argv[++i]);
        } else if (arg == "--contexts" && i + 1 < argc) {
            options.contextCacheSize = std::atoi(argv[++i]);
        } else if (arg == "--queue-depth" && i + 1 < argc) {
            options.maxQueueDepth = std::atoi(argv[++i]);
        } else if (arg == "--busy-retry" && i + 1 < argc) {
            options.busyRetryMs = static_cast<std::uint64_t>(
                std::atol(argv[++i]));
        } else if (arg == "--verbose") {
            options.verbose = true;
        } else {
            return usage(argv[0]);
        }
    }
    options.socketPath = tg::serve::resolveSocketPath(socketArg);

    tg::serve::Server server(options);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "tg_serve: %s\n", err.c_str());
        return 1;
    }
    g_server = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::fprintf(stderr, "tg_serve: ready on %s\n",
                 server.socketPath().c_str());
    server.wait();
    g_server = nullptr;
    std::fprintf(stderr, "tg_serve: drained, exiting\n");
    return 0;
}
