/**
 * @file
 * CLI client of the persistent sweep daemon.
 *
 *     tg_client [--socket PATH] [--wait MS] ping
 *     tg_client [--socket PATH] [--wait MS] stats
 *     tg_client [--socket PATH] [--wait MS] shutdown
 *     tg_client [--socket PATH] [--wait MS] sweep [--quick] [--jobs N]
 *               [--verify] [--deadline MS]
 *
 * `sweep` submits the benchmark x policy grid (the full POWER8
 * evaluation grid, or a small mini-chip grid with --quick) and prints
 * one line per returned cell. --verify recomputes the same grid
 * in-process and asserts the served results are bit-identical —
 * byte-for-byte over cache::encodeRunResult — exiting non-zero on
 * any mismatch; the CI smoke leg runs exactly that.
 *
 * --wait MS retries the connection with backoff until the daemon
 * answers a ping (riding out a booting server); --deadline MS asks
 * the server to abandon the request once the budget elapses.
 *
 * Exit codes distinguish failure classes for scripting:
 *   0 success        3 server busy (retry later)
 *   1 request error  4 cannot connect
 *   2 usage          5 cancelled / deadline expired
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cache/serialize.hh"
#include "serve/client.hh"
#include "shard/worker.hh"
#include "sim/sweep.hh"
#include "workload/profile.hh"

namespace {

using namespace tg;

// Exit codes (see the file header).
constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitBusy = 3;
constexpr int kExitConnect = 4;
constexpr int kExitCancelled = 5;

int usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--socket PATH] [--wait MS] "
                 "<ping|stats|shutdown|sweep> "
                 "[--quick] [--jobs N] [--verify] [--deadline MS]\n",
                 argv0);
    return kExitUsage;
}

/** Map a failed request's DoneMsg to the scripting exit code. */
int exitCodeFor(const serve::DoneMsg &done)
{
    switch (static_cast<serve::DoneStatus>(done.status)) {
    case serve::DoneStatus::Busy:
        return kExitBusy;
    case serve::DoneStatus::Cancelled:
    case serve::DoneStatus::DeadlineExpired:
        return kExitCancelled;
    default:
        return kExitError;
    }
}

void printStats(const serve::StatsReplyMsg &s)
{
    std::printf("uptime          %.1f s\n",
                static_cast<double>(s.uptimeMicros) / 1e6);
    std::printf("requests        run=%llu sweep=%llu ping=%llu "
                "stats=%llu rejected=%llu\n",
                static_cast<unsigned long long>(s.requestsRun),
                static_cast<unsigned long long>(s.requestsSweep),
                static_cast<unsigned long long>(s.requestsPing),
                static_cast<unsigned long long>(s.requestsStats),
                static_cast<unsigned long long>(s.requestsRejected));
    std::printf("admission       busy=%llu cancelled=%llu "
                "deadline=%llu active=%llu\n",
                static_cast<unsigned long long>(s.requestsBusy),
                static_cast<unsigned long long>(s.requestsCancelled),
                static_cast<unsigned long long>(s.requestsDeadline),
                static_cast<unsigned long long>(s.activeRequests));
    std::printf("cells served    %llu (queue depth %llu)\n",
                static_cast<unsigned long long>(s.cellsServed),
                static_cast<unsigned long long>(s.queueDepth));
    std::printf("exec time       run=%.1f ms sweep=%.1f ms\n",
                static_cast<double>(s.runMicros) / 1e3,
                static_cast<double>(s.sweepMicros) / 1e3);
    std::printf("contexts        built=%llu reused=%llu\n",
                static_cast<unsigned long long>(s.contextsBuilt),
                static_cast<unsigned long long>(s.contextsReused));
    std::printf("%s\n", s.store.describe().c_str());
    for (int k = 0; k < cache::kArtifactKinds; ++k) {
        const auto &pk = s.store.kind[static_cast<std::size_t>(k)];
        std::printf(
            "  %-11s hits=%llu misses=%llu inserts=%llu "
            "bytes=%llu evictions=%llu\n",
            cache::artifactKindName(static_cast<cache::ArtifactKind>(k)),
            static_cast<unsigned long long>(pk.hits),
            static_cast<unsigned long long>(pk.misses),
            static_cast<unsigned long long>(pk.inserts),
            static_cast<unsigned long long>(pk.bytes),
            static_cast<unsigned long long>(pk.evictions));
    }
}

/** The sweep the CLI submits: grid, setup blob and local replica. */
struct SweepPlan
{
    serve::SweepMsg request;
    shard::ChipKind kind = shard::ChipKind::Power8;
    int chipArg = 0;
    sim::SimConfig cfg;
};

SweepPlan makePlan(bool quick, int jobs)
{
    SweepPlan plan;
    if (quick) {
        plan.kind = shard::ChipKind::Mini;
        plan.chipArg = 1;
        plan.cfg.noiseSamples = 4;
        plan.cfg.profilingEpochs = 8;
        plan.request.benchmarks = {"rayt", "fft"};
        plan.request.policies = {
            static_cast<std::uint32_t>(core::PolicyKind::AllOn),
            static_cast<std::uint32_t>(core::PolicyKind::OracT)};
    } else {
        for (const auto &p : workload::splashProfiles())
            plan.request.benchmarks.push_back(p.name);
        for (auto pk : core::allPolicyKinds())
            plan.request.policies.push_back(
                static_cast<std::uint32_t>(pk));
    }
    plan.request.setup =
        shard::encodeBasicSetup(plan.kind, plan.chipArg, plan.cfg);
    plan.request.jobs = static_cast<std::uint32_t>(
        jobs > 0 ? jobs : 1);
    return plan;
}

/** Byte-compare every served cell against a local recompute. */
int verifySweep(const SweepPlan &plan, const sim::SweepResult &served)
{
    floorplan::Chip chip =
        plan.kind == shard::ChipKind::Power8
            ? floorplan::buildPower8Chip()
            : floorplan::buildMiniChip(plan.chipArg);
    sim::Simulation simulation(chip, plan.cfg);
    sim::SweepResult local = sim::runSweep(
        simulation, served.benchmarks, served.policies, false,
        static_cast<int>(plan.request.jobs));
    std::size_t mismatches = 0;
    for (std::size_t b = 0; b < served.benchmarks.size(); ++b) {
        for (std::size_t p = 0; p < served.policies.size(); ++p) {
            if (cache::encodeRunResult(served.results[b][p]) !=
                cache::encodeRunResult(local.results[b][p])) {
                std::fprintf(stderr,
                             "verify: MISMATCH at [%s / %s]\n",
                             served.benchmarks[b].c_str(),
                             core::policyName(served.policies[p]));
                ++mismatches;
            }
        }
    }
    if (mismatches) {
        std::fprintf(stderr,
                     "verify: %zu cells differ from the local "
                     "recompute\n",
                     mismatches);
        return 1;
    }
    std::printf("verify: served grid is bit-identical to the local "
                "recompute\n");
    return 0;
}

} // namespace

int main(int argc, char **argv)
{
    std::string socketArg;
    std::string command;
    bool quick = false;
    bool verify = false;
    int jobs = 1;
    long waitMs = 0;
    long deadlineMs = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc)
            socketArg = argv[++i];
        else if (arg == "--quick")
            quick = true;
        else if (arg == "--verify")
            verify = true;
        else if (arg == "--jobs" && i + 1 < argc)
            jobs = std::atoi(argv[++i]);
        else if (arg == "--wait" && i + 1 < argc)
            waitMs = std::atol(argv[++i]);
        else if (arg == "--deadline" && i + 1 < argc)
            deadlineMs = std::atol(argv[++i]);
        else if (command.empty() && arg[0] != '-')
            command = arg;
        else
            return usage(argv[0]);
    }
    if (command.empty() || waitMs < 0 || deadlineMs < 0)
        return usage(argv[0]);

    const std::string path = serve::resolveSocketPath(socketArg);
    serve::Client client;
    std::string err;
    const bool up =
        waitMs > 0
            ? client.connectWithRetry(
                  path, static_cast<std::uint64_t>(waitMs), &err)
            : client.connect(path, &err);
    if (!up) {
        std::fprintf(stderr, "tg_client: %s\n", err.c_str());
        return kExitConnect;
    }

    if (command == "ping") {
        if (!client.ping(&err)) {
            std::fprintf(stderr, "tg_client: %s\n", err.c_str());
            return kExitError;
        }
        std::printf("pong (%s)\n", path.c_str());
        return kExitOk;
    }
    if (command == "stats") {
        serve::StatsReplyMsg stats;
        if (!client.stats(stats, &err)) {
            std::fprintf(stderr, "tg_client: %s\n", err.c_str());
            return kExitError;
        }
        printStats(stats);
        return kExitOk;
    }
    if (command == "shutdown") {
        if (!client.shutdownServer(&err)) {
            std::fprintf(stderr, "tg_client: %s\n", err.c_str());
            return kExitError;
        }
        std::printf("server draining\n");
        return kExitOk;
    }
    if (command == "sweep") {
        SweepPlan plan = makePlan(quick, jobs);
        plan.request.deadlineMs =
            static_cast<std::uint64_t>(deadlineMs);
        sim::SweepResult served;
        serve::DoneMsg done;
        if (!client.sweep(plan.request, served, &err, &done)) {
            std::fprintf(stderr, "tg_client: %s\n", err.c_str());
            return exitCodeFor(done);
        }
        for (const auto &bench : served.benchmarks)
            for (auto pk : served.policies)
                std::printf("%s\n",
                            sim::progressLine(served.at(bench, pk))
                                .c_str());
        if (verify)
            return verifySweep(plan, served);
        return kExitOk;
    }
    return usage(argv[0]);
}
