/**
 * @file
 * CLI client of the persistent sweep daemon.
 *
 *     tg_client [--socket PATH] ping
 *     tg_client [--socket PATH] stats
 *     tg_client [--socket PATH] shutdown
 *     tg_client [--socket PATH] sweep [--quick] [--jobs N] [--verify]
 *
 * `sweep` submits the benchmark x policy grid (the full POWER8
 * evaluation grid, or a small mini-chip grid with --quick) and prints
 * one line per returned cell. --verify recomputes the same grid
 * in-process and asserts the served results are bit-identical —
 * byte-for-byte over cache::encodeRunResult — exiting non-zero on
 * any mismatch; the CI smoke leg runs exactly that.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cache/serialize.hh"
#include "serve/client.hh"
#include "shard/worker.hh"
#include "sim/sweep.hh"
#include "workload/profile.hh"

namespace {

using namespace tg;

int usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--socket PATH] "
                 "<ping|stats|shutdown|sweep> "
                 "[--quick] [--jobs N] [--verify]\n",
                 argv0);
    return 2;
}

void printStats(const serve::StatsReplyMsg &s)
{
    std::printf("uptime          %.1f s\n",
                static_cast<double>(s.uptimeMicros) / 1e6);
    std::printf("requests        run=%llu sweep=%llu ping=%llu "
                "stats=%llu rejected=%llu\n",
                static_cast<unsigned long long>(s.requestsRun),
                static_cast<unsigned long long>(s.requestsSweep),
                static_cast<unsigned long long>(s.requestsPing),
                static_cast<unsigned long long>(s.requestsStats),
                static_cast<unsigned long long>(s.requestsRejected));
    std::printf("cells served    %llu (queue depth %llu)\n",
                static_cast<unsigned long long>(s.cellsServed),
                static_cast<unsigned long long>(s.queueDepth));
    std::printf("exec time       run=%.1f ms sweep=%.1f ms\n",
                static_cast<double>(s.runMicros) / 1e3,
                static_cast<double>(s.sweepMicros) / 1e3);
    std::printf("contexts        built=%llu reused=%llu\n",
                static_cast<unsigned long long>(s.contextsBuilt),
                static_cast<unsigned long long>(s.contextsReused));
    std::printf("%s\n", s.store.describe().c_str());
    for (int k = 0; k < cache::kArtifactKinds; ++k) {
        const auto &pk = s.store.kind[static_cast<std::size_t>(k)];
        std::printf(
            "  %-11s hits=%llu misses=%llu inserts=%llu "
            "bytes=%llu evictions=%llu\n",
            cache::artifactKindName(static_cast<cache::ArtifactKind>(k)),
            static_cast<unsigned long long>(pk.hits),
            static_cast<unsigned long long>(pk.misses),
            static_cast<unsigned long long>(pk.inserts),
            static_cast<unsigned long long>(pk.bytes),
            static_cast<unsigned long long>(pk.evictions));
    }
}

/** The sweep the CLI submits: grid, setup blob and local replica. */
struct SweepPlan
{
    serve::SweepMsg request;
    shard::ChipKind kind = shard::ChipKind::Power8;
    int chipArg = 0;
    sim::SimConfig cfg;
};

SweepPlan makePlan(bool quick, int jobs)
{
    SweepPlan plan;
    if (quick) {
        plan.kind = shard::ChipKind::Mini;
        plan.chipArg = 1;
        plan.cfg.noiseSamples = 4;
        plan.cfg.profilingEpochs = 8;
        plan.request.benchmarks = {"rayt", "fft"};
        plan.request.policies = {
            static_cast<std::uint32_t>(core::PolicyKind::AllOn),
            static_cast<std::uint32_t>(core::PolicyKind::OracT)};
    } else {
        for (const auto &p : workload::splashProfiles())
            plan.request.benchmarks.push_back(p.name);
        for (auto pk : core::allPolicyKinds())
            plan.request.policies.push_back(
                static_cast<std::uint32_t>(pk));
    }
    plan.request.setup =
        shard::encodeBasicSetup(plan.kind, plan.chipArg, plan.cfg);
    plan.request.jobs = static_cast<std::uint32_t>(
        jobs > 0 ? jobs : 1);
    return plan;
}

/** Byte-compare every served cell against a local recompute. */
int verifySweep(const SweepPlan &plan, const sim::SweepResult &served)
{
    floorplan::Chip chip =
        plan.kind == shard::ChipKind::Power8
            ? floorplan::buildPower8Chip()
            : floorplan::buildMiniChip(plan.chipArg);
    sim::Simulation simulation(chip, plan.cfg);
    sim::SweepResult local = sim::runSweep(
        simulation, served.benchmarks, served.policies, false,
        static_cast<int>(plan.request.jobs));
    std::size_t mismatches = 0;
    for (std::size_t b = 0; b < served.benchmarks.size(); ++b) {
        for (std::size_t p = 0; p < served.policies.size(); ++p) {
            if (cache::encodeRunResult(served.results[b][p]) !=
                cache::encodeRunResult(local.results[b][p])) {
                std::fprintf(stderr,
                             "verify: MISMATCH at [%s / %s]\n",
                             served.benchmarks[b].c_str(),
                             core::policyName(served.policies[p]));
                ++mismatches;
            }
        }
    }
    if (mismatches) {
        std::fprintf(stderr,
                     "verify: %zu cells differ from the local "
                     "recompute\n",
                     mismatches);
        return 1;
    }
    std::printf("verify: served grid is bit-identical to the local "
                "recompute\n");
    return 0;
}

} // namespace

int main(int argc, char **argv)
{
    std::string socketArg;
    std::string command;
    bool quick = false;
    bool verify = false;
    int jobs = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc)
            socketArg = argv[++i];
        else if (arg == "--quick")
            quick = true;
        else if (arg == "--verify")
            verify = true;
        else if (arg == "--jobs" && i + 1 < argc)
            jobs = std::atoi(argv[++i]);
        else if (command.empty() && arg[0] != '-')
            command = arg;
        else
            return usage(argv[0]);
    }
    if (command.empty())
        return usage(argv[0]);

    const std::string path = serve::resolveSocketPath(socketArg);
    serve::Client client;
    std::string err;
    if (!client.connect(path, &err)) {
        std::fprintf(stderr, "tg_client: %s\n", err.c_str());
        return 1;
    }

    if (command == "ping") {
        if (!client.ping(&err)) {
            std::fprintf(stderr, "tg_client: %s\n", err.c_str());
            return 1;
        }
        std::printf("pong (%s)\n", path.c_str());
        return 0;
    }
    if (command == "stats") {
        serve::StatsReplyMsg stats;
        if (!client.stats(stats, &err)) {
            std::fprintf(stderr, "tg_client: %s\n", err.c_str());
            return 1;
        }
        printStats(stats);
        return 0;
    }
    if (command == "shutdown") {
        if (!client.shutdownServer(&err)) {
            std::fprintf(stderr, "tg_client: %s\n", err.c_str());
            return 1;
        }
        std::printf("server draining\n");
        return 0;
    }
    if (command == "sweep") {
        const SweepPlan plan = makePlan(quick, jobs);
        sim::SweepResult served;
        if (!client.sweep(plan.request, served, &err)) {
            std::fprintf(stderr, "tg_client: %s\n", err.c_str());
            return 1;
        }
        for (const auto &bench : served.benchmarks)
            for (auto pk : served.policies)
                std::printf("%s\n",
                            sim::progressLine(served.at(bench, pk))
                                .c_str());
        if (verify)
            return verifySweep(plan, served);
        return 0;
    }
    return usage(argv[0]);
}
