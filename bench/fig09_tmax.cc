/**
 * @file
 * Fig. 9: maximum chip-wide temperature per benchmark under all
 * eight schemes. Paper shape: all-on raises Tmax ~5.4 degC over
 * off-chip; Naive does not help; OracT recovers ~1.2 degC from
 * all-on; OracV is by far the hottest; Prac* track Orac* closely.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main(int argc, char **argv)
{
    bench::banner("Fig. 9",
                  "maximum chip-wide temperature (degC) per policy");

    auto &simulation = bench::evaluationSim();
    auto sweep = sim::runSweep(simulation, {}, {}, true,
                               bench::parseJobs(argc, argv));

    std::vector<std::string> header = {"benchmark"};
    for (auto k : sweep.policies)
        header.push_back(core::policyName(k));
    TextTable t(header);
    for (const auto &b : sweep.benchmarks) {
        std::vector<std::string> row = {b};
        for (auto k : sweep.policies)
            row.push_back(TextTable::num(sweep.at(b, k).maxTmax, 1));
        t.addRow(std::move(row));
    }
    std::vector<std::string> avg = {"AVG"};
    for (auto k : sweep.policies)
        avg.push_back(TextTable::num(
            sweep.average(k,
                          [](const sim::RunResult &r) {
                              return r.maxTmax;
                          }),
            1));
    t.addRow(std::move(avg));
    t.print(std::cout);

    auto mean = [&](core::PolicyKind k) {
        return sweep.average(
            k, [](const sim::RunResult &r) { return r.maxTmax; });
    };
    std::printf("\nheadline deltas (avg): all-on vs off-chip %+0.2f "
                "(paper +5.4); OracT vs all-on %+0.2f (paper -1.2); "
                "Naive vs all-on %+0.2f (paper +1.1); OracV vs "
                "all-on %+0.2f (paper +8.5); PracT vs OracT %+0.2f "
                "(paper +0.5); PracVT vs OracT %+0.2f (paper +0.6)\n",
                mean(core::PolicyKind::AllOn) -
                    mean(core::PolicyKind::OffChip),
                mean(core::PolicyKind::OracT) -
                    mean(core::PolicyKind::AllOn),
                mean(core::PolicyKind::Naive) -
                    mean(core::PolicyKind::AllOn),
                mean(core::PolicyKind::OracV) -
                    mean(core::PolicyKind::AllOn),
                mean(core::PolicyKind::PracT) -
                    mean(core::PolicyKind::OracT),
                mean(core::PolicyKind::PracVT) -
                    mean(core::PolicyKind::OracT));
    return 0;
}
