/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench binary regenerates one figure or table of the paper's
 * evaluation: it prints a header naming the artefact, the series the
 * paper plots, and (where the paper states one) the headline number
 * the reproduction should be compared against.
 */

#ifndef TG_BENCH_BENCH_COMMON_HH
#define TG_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/exec.hh"
#include "floorplan/power8.hh"
#include "sim/simulation.hh"
#include "sim/sweep.hh"
#include "workload/profile.hh"

namespace tg {
namespace bench {

/**
 * Parse the shared bench flags: --jobs N / -j N selects the worker
 * count for sweep fan-out (0 = TG_JOBS, then every hardware thread;
 * see exec::resolveJobs). Unknown arguments are ignored so benches
 * can layer their own flags on top.
 */
inline int
parseJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if ((!std::strcmp(argv[i], "--jobs") ||
             !std::strcmp(argv[i], "-j")) &&
            i + 1 < argc)
            return std::atoi(argv[i + 1]);
        if (!std::strncmp(argv[i], "--jobs=", 7))
            return std::atoi(argv[i] + 7);
    }
    return 0;
}

/**
 * Parse `<flag> N` / `<flag>=N`; returns `fallback` when absent.
 * (Shared by the sharded-sweep benches for --processes.)
 */
inline int
parseIntFlag(int argc, char **argv, const char *flag, int fallback)
{
    const std::size_t len = std::strlen(flag);
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], flag) && i + 1 < argc)
            return std::atoi(argv[i + 1]);
        if (!std::strncmp(argv[i], flag, len) && argv[i][len] == '=')
            return std::atoi(argv[i] + len + 1);
    }
    return fallback;
}

/** Print the standard bench banner. */
inline void
banner(const std::string &artefact, const std::string &what)
{
    std::printf("=============================================="
                "==============\n");
    std::printf("ThermoGater reproduction — %s\n", artefact.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("=============================================="
                "==============\n");
}

/** The evaluation chip (paper Table 1 / Fig. 4), built once. */
inline const floorplan::Chip &
evaluationChip()
{
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    return chip;
}

/** A shared FIVR-design simulation context for the benches. */
inline sim::Simulation &
evaluationSim()
{
    static sim::Simulation simulation(evaluationChip(), sim::SimConfig{});
    return simulation;
}

// --- bit-identity checks (determinism-contract assertions) -----------

/** Exact comparison of two vectors of doubles. */
inline bool
sameSeries(const std::vector<double> &a, const std::vector<double> &b)
{
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin());
}

/** Bitwise comparison of every metric two runs report. */
inline bool
identicalRuns(const sim::RunResult &a, const sim::RunResult &b,
              std::string &why)
{
    auto fail = [&](const char *field) {
        why = field;
        return false;
    };
    if (a.benchmark != b.benchmark) return fail("benchmark");
    if (a.policy != b.policy) return fail("policy");
    if (a.maxTmax != b.maxTmax) return fail("maxTmax");
    if (a.hottestSpot != b.hottestSpot) return fail("hottestSpot");
    if (a.maxGradient != b.maxGradient) return fail("maxGradient");
    if (a.maxNoiseFrac != b.maxNoiseFrac) return fail("maxNoiseFrac");
    if (a.emergencyFrac != b.emergencyFrac)
        return fail("emergencyFrac");
    if (a.avgRegulatorLoss != b.avgRegulatorLoss)
        return fail("avgRegulatorLoss");
    if (a.avgEta != b.avgEta) return fail("avgEta");
    if (a.avgActiveVrs != b.avgActiveVrs) return fail("avgActiveVrs");
    if (a.meanPower != b.meanPower) return fail("meanPower");
    if (a.overrideCount != b.overrideCount)
        return fail("overrideCount");
    if (!sameSeries(a.vrActivity, b.vrActivity))
        return fail("vrActivity");
    if (!sameSeries(a.vrAging, b.vrAging)) return fail("vrAging");
    if (a.agingImbalance != b.agingImbalance)
        return fail("agingImbalance");
    return true;
}

/** Bit-compare two grids cell by cell; returns the mismatch count. */
inline int
compareGrids(const sim::SweepResult &a, const sim::SweepResult &b,
             const char *name_a, const char *name_b)
{
    int mismatches = 0;
    for (const auto &bench_name : a.benchmarks) {
        for (auto k : a.policies) {
            std::string why;
            if (!identicalRuns(a.at(bench_name, k),
                               b.at(bench_name, k), why)) {
                std::fprintf(stderr,
                             "MISMATCH [%s / %s]: field %s differs "
                             "between %s and %s\n",
                             bench_name.c_str(), core::policyName(k),
                             why.c_str(), name_a, name_b);
                ++mismatches;
            }
        }
    }
    return mismatches;
}

} // namespace bench
} // namespace tg

#endif // TG_BENCH_BENCH_COMMON_HH
