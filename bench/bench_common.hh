/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench binary regenerates one figure or table of the paper's
 * evaluation: it prints a header naming the artefact, the series the
 * paper plots, and (where the paper states one) the headline number
 * the reproduction should be compared against.
 */

#ifndef TG_BENCH_BENCH_COMMON_HH
#define TG_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "common/exec.hh"
#include "floorplan/power8.hh"
#include "sim/simulation.hh"
#include "sim/sweep.hh"
#include "workload/profile.hh"

namespace tg {
namespace bench {

/**
 * Parse the shared bench flags: --jobs N / -j N selects the worker
 * count for sweep fan-out (0 = TG_JOBS, then every hardware thread;
 * see exec::resolveJobs). Unknown arguments are ignored so benches
 * can layer their own flags on top.
 */
inline int
parseJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if ((!std::strcmp(argv[i], "--jobs") ||
             !std::strcmp(argv[i], "-j")) &&
            i + 1 < argc)
            return std::atoi(argv[i + 1]);
        if (!std::strncmp(argv[i], "--jobs=", 7))
            return std::atoi(argv[i] + 7);
    }
    return 0;
}

/** Print the standard bench banner. */
inline void
banner(const std::string &artefact, const std::string &what)
{
    std::printf("=============================================="
                "==============\n");
    std::printf("ThermoGater reproduction — %s\n", artefact.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("=============================================="
                "==============\n");
}

/** The evaluation chip (paper Table 1 / Fig. 4), built once. */
inline const floorplan::Chip &
evaluationChip()
{
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    return chip;
}

/** A shared FIVR-design simulation context for the benches. */
inline sim::Simulation &
evaluationSim()
{
    static sim::Simulation simulation(evaluationChip(), sim::SimConfig{});
    return simulation;
}

} // namespace bench
} // namespace tg

#endif // TG_BENCH_BENCH_COMMON_HH
