/**
 * @file
 * Fig. 12: representative die heat maps at the frame where Tmax
 * peaks during cholesky, under off-chip / all-on / OracT / OracV.
 * Paper: off-chip peaks ~66 degC; all-on triggers LSU/EXU hotspots
 * (~73 degC); OracT removes them; OracV pushes past 90 degC with the
 * worst profile.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hh"

using namespace tg;

namespace {

/** Render a die grid as an ASCII heat map with a shared scale. */
void
renderMap(const sim::RunResult &r, double lo, double hi)
{
    static const char shades[] = " .:-=+*#%@";
    std::printf("%s: Tmax %.1f degC at %s (t=%.0f us)\n",
                core::policyName(r.policy), r.maxTmax,
                r.hottestSpot.empty() ? "-" : r.hottestSpot.c_str(),
                r.heatmapTimeUs);
    for (int row = r.heatmapH - 1; row >= 0; --row) {
        std::printf("  ");
        for (int col = 0; col < r.heatmapW; ++col) {
            double t = r.heatmap[static_cast<std::size_t>(
                row * r.heatmapW + col)];
            int idx = static_cast<int>(
                std::floor((t - lo) / (hi - lo) * 9.999));
            idx = std::clamp(idx, 0, 9);
            std::printf("%c", shades[idx]);
        }
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::banner("Fig. 12",
                  "die heat maps at the Tmax frame (cholesky); "
                  "shared scale, ' '=coolest '@'=hottest");

    auto &simulation = bench::evaluationSim();
    const auto &profile = workload::profileByName("chol");

    std::vector<core::PolicyKind> kinds = {
        core::PolicyKind::OffChip, core::PolicyKind::AllOn,
        core::PolicyKind::OracT, core::PolicyKind::OracV};

    std::vector<sim::RunResult> runs;
    double lo = 1e9;
    double hi = -1e9;
    for (auto k : kinds) {
        sim::RecordOptions opts;
        opts.heatmap = true;
        opts.noiseSamplesOverride = 0;
        runs.push_back(simulation.run(profile, k, opts));
        for (double t : runs.back().heatmap) {
            lo = std::min(lo, t);
            hi = std::max(hi, t);
        }
    }

    std::printf("temperature scale: %.1f .. %.1f degC\n\n", lo, hi);
    for (const auto &r : runs)
        renderMap(r, lo, hi);

    std::printf("paper anchors: off-chip ~66, all-on ~73 (LSU/EXU "
                "hotspots), OracT ~71.2 (hotspots removed), OracV "
                ">90 degC\n");
    return 0;
}
