/**
 * @file
 * Fig. 12: representative die heat maps at the frame where Tmax
 * peaks during cholesky, under off-chip / all-on / OracT / OracV.
 * Paper: off-chip peaks ~66 degC; all-on triggers LSU/EXU hotspots
 * (~73 degC); OracT removes them; OracV pushes past 90 degC with the
 * worst profile.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hh"
#include "pdn/global_grid.hh"
#include "power/model.hh"
#include "uarch/core_model.hh"
#include "vreg/design.hh"
#include "vreg/network.hh"

using namespace tg;

namespace {

/** Render a die grid as an ASCII heat map with a shared scale. */
void
renderMap(const sim::RunResult &r, double lo, double hi)
{
    static const char shades[] = " .:-=+*#%@";
    std::printf("%s: Tmax %.1f degC at %s (t=%.0f us)\n",
                core::policyName(r.policy), r.maxTmax,
                r.hottestSpot.empty() ? "-" : r.hottestSpot.c_str(),
                r.heatmapTimeUs);
    for (int row = r.heatmapH - 1; row >= 0; --row) {
        std::printf("  ");
        for (int col = 0; col < r.heatmapW; ++col) {
            double t = r.heatmap[static_cast<std::size_t>(
                row * r.heatmapW + col)];
            int idx = static_cast<int>(
                std::floor((t - lo) / (hi - lo) * 9.999));
            idx = std::clamp(idx, 0, 9);
            std::printf("%c", shades[idx]);
        }
        std::printf("\n");
    }
    std::printf("\n");
}

/**
 * Companion panel: input-side (global grid) IR-drop maps for the
 * all-on and gated regulator configurations at a representative chol
 * frame. Both node-voltage columns come out of ONE multi-RHS
 * GlobalGrid::solveBatch() pass over the shared factorization.
 */
void
renderInputSideDroop(const floorplan::Chip &chip)
{
    pdn::GlobalGrid grid(chip);
    power::PowerModel pm(chip);
    auto design = vreg::fivrDesign();

    const auto &profile = workload::profileByName("chol");
    auto trace = uarch::buildActivityTrace(chip, profile, 3);
    auto bp = pm.dynamicFrame(trace.frames[trace.frames.size() / 2]);
    for (std::size_t b = 0; b < bp.size(); ++b)
        bp[b] += pm.leakage(static_cast<int>(b), 65.0);

    std::vector<Watts> vr_in_all(chip.plan.vrs().size(), 0.0);
    std::vector<Watts> vr_in_gated(chip.plan.vrs().size(), 0.0);
    for (const auto &dom : chip.plan.domains()) {
        vreg::RegulatorNetwork net(design,
                                   static_cast<int>(dom.vrs.size()));
        net.setVout(chip.params.vdd);
        Amperes demand = pm.domainCurrent(bp, dom.id);
        auto all_on =
            net.evaluate(demand, static_cast<int>(dom.vrs.size()));
        auto gated = net.evaluateGated(demand);
        double p_out = demand * chip.params.vdd;
        for (std::size_t l = 0; l < dom.vrs.size(); ++l)
            vr_in_all[static_cast<std::size_t>(dom.vrs[l])] =
                (p_out + all_on.plossTotal) /
                static_cast<double>(dom.vrs.size());
        for (int l = 0; l < gated.active; ++l)
            vr_in_gated[static_cast<std::size_t>(
                dom.vrs[static_cast<std::size_t>(l)])] =
                (p_out + gated.plossTotal) / gated.active;
    }

    std::vector<std::vector<Amperes>> maps = {
        grid.nodeCurrents(bp, vr_in_all),
        grid.nodeCurrents(bp, vr_in_gated)};
    std::vector<pdn::GlobalDroop> droops;
    Matrix volts;
    grid.solveBatch(maps, droops, &volts);

    double vin = grid.params().vin;
    double worst =
        std::max(droops[0].maxDroopFrac, droops[1].maxDroopFrac);
    std::printf("input-side (C4/global grid) IR drop, chol mid-run "
                "frame; scale 0 .. %.2f%% of Vin\n\n",
                worst * 100.0);
    static const char shades[] = " .:-=+*#%@";
    const char *label[] = {"all-on", "gated"};
    for (std::size_t j = 0; j < maps.size(); ++j) {
        std::printf("%s: max %.3f%%  mean %.3f%%\n", label[j],
                    droops[j].maxDroopFrac * 100.0,
                    droops[j].meanDroopFrac * 100.0);
        for (int row = grid.gridHeight() - 1; row >= 0; --row) {
            std::printf("  ");
            for (int col = 0; col < grid.gridWidth(); ++col) {
                std::size_t n = static_cast<std::size_t>(
                    row * grid.gridWidth() + col);
                double droop = (vin - volts(n, j)) / vin;
                int idx = worst > 0.0
                              ? static_cast<int>(std::floor(
                                    droop / worst * 9.999))
                              : 0;
                idx = std::clamp(idx, 0, 9);
                std::printf("%c", shades[idx]);
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    bench::banner("Fig. 12",
                  "die heat maps at the Tmax frame (cholesky); "
                  "shared scale, ' '=coolest '@'=hottest");

    auto &simulation = bench::evaluationSim();
    const auto &profile = workload::profileByName("chol");

    std::vector<core::PolicyKind> kinds = {
        core::PolicyKind::OffChip, core::PolicyKind::AllOn,
        core::PolicyKind::OracT, core::PolicyKind::OracV};

    std::vector<sim::RunResult> runs;
    double lo = 1e9;
    double hi = -1e9;
    for (auto k : kinds) {
        sim::RecordOptions opts;
        opts.heatmap = true;
        opts.noiseSamplesOverride = 0;
        runs.push_back(simulation.run(profile, k, opts));
        for (double t : runs.back().heatmap) {
            lo = std::min(lo, t);
            hi = std::max(hi, t);
        }
    }

    std::printf("temperature scale: %.1f .. %.1f degC\n\n", lo, hi);
    for (const auto &r : runs)
        renderMap(r, lo, hi);

    std::printf("paper anchors: off-chip ~66, all-on ~73 (LSU/EXU "
                "hotspots), OracT ~71.2 (hotspots removed), OracV "
                ">90 degC\n\n");

    renderInputSideDroop(bench::evaluationChip());
    return 0;
}
