/**
 * @file
 * Resilience sweep: fault rate x policy over the benchmark suite.
 *
 * Not a paper figure — a robustness study of the reproduction: random
 * fault scenarios (sensor, regulator and alert faults drawn at a
 * configurable rate) are injected into the evaluation runs and the
 * graceful-degradation machinery is measured: degraded decisions,
 * minimum-supply floor engagements, sensor quarantines and their
 * detection latency, and the thermal/noise cost relative to the clean
 * run. Scenarios are deterministic in (seed, rate), so the sweep is
 * reproducible at any worker count.
 *
 * Flags: --jobs N (shared bench flag), --quick (CI smoke: one
 * benchmark, two policies, one non-zero fault rate).
 */

#include <cstring>
#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "common/table.hh"
#include "fault/scenario.hh"

using namespace tg;

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;

    bench::banner("fault sweep",
                  "graceful degradation under injected faults: "
                  "fault rate x policy");

    auto &simulation = bench::evaluationSim();
    const auto &chip = bench::evaluationChip();
    int jobs = bench::parseJobs(argc, argv);

    std::vector<double> rates =
        quick ? std::vector<double>{0.0, 4000.0}
              : std::vector<double>{0.0, 1000.0, 4000.0};
    std::vector<std::string> benchmarks;
    std::vector<core::PolicyKind> policies;
    if (quick) {
        benchmarks = {"fft"};
        policies = {core::PolicyKind::AllOn, core::PolicyKind::PracVT};
    } else {
        policies = {core::PolicyKind::AllOn, core::PolicyKind::Naive,
                    core::PolicyKind::OracVT, core::PolicyKind::PracT,
                    core::PolicyKind::PracVT};
    }

    fault::RandomScenarioSpec spec;
    spec.sensors = static_cast<int>(chip.plan.vrs().size());
    spec.vrs = static_cast<int>(chip.plan.vrs().size());
    spec.domains = static_cast<int>(chip.plan.domains().size());

    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
        spec.faultsPerSecond = rates[ri];
        fault::FaultScenario scenario = fault::randomScenario(
            0x5eedull + ri, spec);
        sim::RecordOptions opts;
        opts.faultScenario = &scenario;

        std::printf("\n--- fault rate %.0f /s (%zu scheduled events) "
                    "---\n",
                    rates[ri], scenario.events().size());
        auto sweep = sim::runSweep(simulation, benchmarks, policies,
                                   !quick, jobs, opts);

        TextTable t({"policy", "Tmax", "noise%", "emerg%", "degraded",
                     "floor", "undersup", "quarant", "det_ms"});
        for (auto k : sweep.policies) {
            auto avg = [&](auto metric) {
                return sweep.average(k, metric);
            };
            std::vector<std::string> row = {core::policyName(k)};
            row.push_back(TextTable::num(
                avg([](const sim::RunResult &r) { return r.maxTmax; }),
                1));
            row.push_back(TextTable::num(
                avg([](const sim::RunResult &r) {
                    return r.maxNoiseFrac * 100.0;
                }),
                2));
            row.push_back(TextTable::num(
                avg([](const sim::RunResult &r) {
                    return r.emergencyFrac * 100.0;
                }),
                3));
            row.push_back(TextTable::num(
                avg([](const sim::RunResult &r) {
                    return static_cast<double>(
                        r.resilience.degradedDecisions);
                }),
                1));
            row.push_back(TextTable::num(
                avg([](const sim::RunResult &r) {
                    return static_cast<double>(
                        r.resilience.floorEngagements);
                }),
                1));
            row.push_back(TextTable::num(
                avg([](const sim::RunResult &r) {
                    return static_cast<double>(
                        r.resilience.underSuppliedDecisions);
                }),
                1));
            row.push_back(TextTable::num(
                avg([](const sim::RunResult &r) {
                    return static_cast<double>(
                        r.resilience.quarantineEvents);
                }),
                1));
            // Mean detection latency over the runs that detected
            // something (latency < 0 = nothing to detect).
            double lat_sum = 0.0;
            int lat_n = 0;
            for (const auto &b : sweep.benchmarks) {
                const auto &r = sweep.at(b, k);
                if (r.resilience.detectionLatency >= 0.0) {
                    lat_sum += r.resilience.detectionLatency * 1e3;
                    ++lat_n;
                }
            }
            row.push_back(lat_n > 0
                              ? TextTable::num(lat_sum / lat_n, 2)
                              : std::string("-"));
            t.addRow(std::move(row));
        }
        t.print(std::cout);
    }

    std::printf("\ncolumns: degraded/floor/undersup = governor "
                "decisions with a faulted regulator set / raised to "
                "the minimum-supply floor / short of the floor even "
                "all-on; quarant = sensor quarantine entries; det_ms "
                "= mean fault-to-quarantine latency [ms].\n");
    return 0;
}
