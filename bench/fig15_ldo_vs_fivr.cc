/**
 * @file
 * Fig. 15: maximum voltage noise per benchmark with every component
 * regulator active (all-on), LDO-based vs FIVR-like buck design
 * (Section 6.4). The LDO's faster, inductor-free output trims the
 * noise slightly: paper reports ~0.7% (absolute) on average and
 * ~1.1% on the worst benchmark (fft).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main()
{
    bench::banner("Fig. 15",
                  "max voltage noise under all-on: LDO vs FIVR "
                  "(paper: LDO ~0.7% lower on average)");

    const auto &chip = bench::evaluationChip();
    sim::SimConfig ldo_cfg;
    ldo_cfg.regulator = sim::RegulatorChoice::Ldo;
    sim::Simulation fivr_sim(chip, sim::SimConfig{});
    sim::Simulation ldo_sim(chip, ldo_cfg);

    TextTable t({"benchmark", "LDO (%)", "FIVR (%)", "delta (%)"});
    double max_ldo = 0.0;
    double max_fivr = 0.0;
    double sum_delta = 0.0;
    int n = 0;
    for (const auto &profile : workload::splashProfiles()) {
        auto fivr =
            fivr_sim.run(profile, core::PolicyKind::AllOn, {});
        auto ldo = ldo_sim.run(profile, core::PolicyKind::AllOn, {});
        double delta =
            (ldo.maxNoiseFrac - fivr.maxNoiseFrac) * 100.0;
        sum_delta += delta;
        ++n;
        max_ldo = std::max(max_ldo, ldo.maxNoiseFrac * 100.0);
        max_fivr = std::max(max_fivr, fivr.maxNoiseFrac * 100.0);
        t.addRow({profile.name,
                  TextTable::num(ldo.maxNoiseFrac * 100.0, 2),
                  TextTable::num(fivr.maxNoiseFrac * 100.0, 2),
                  TextTable::num(delta, 2)});
    }
    t.addRow({"MAX", TextTable::num(max_ldo, 2),
              TextTable::num(max_fivr, 2),
              TextTable::num(max_ldo - max_fivr, 2)});
    t.print(std::cout);

    std::printf("\naverage LDO-FIVR delta: %.2f%% of Vdd (paper "
                "~-0.7%%)\n",
                sum_delta / n);
    return 0;
}
