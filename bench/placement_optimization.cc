/**
 * @file
 * Regulator placement optimisation (paper Section 5 methodology).
 *
 * The paper derives a voltage-noise-optimal regulator placement with
 * a Walking-Pads-style hill climb and reports it deviates only
 * slightly from the uniform lattice (the uniform layout's maximum
 * noise is within 0.4% of optimal), which justifies evaluating on
 * the regular placement. This bench reruns that methodology per
 * core domain against a high-demand load map.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "pdn/placement.hh"
#include "uarch/core_model.hh"

using namespace tg;

int
main()
{
    bench::banner("placement optimisation (Section 5)",
                  "uniform vs noise-optimised VR placement; paper: "
                  "uniform within 0.4% of optimal");

    const auto &chip = bench::evaluationChip();
    auto design = vreg::fivrDesign();

    // High-demand load map: every core at 85% utilisation.
    power::PowerModel pm(chip);
    auto trace = uarch::buildActivityTrace(
        chip, workload::profileByName("chol"), 7);
    auto block_power = pm.dynamicFrame(trace.frames[0]);
    for (std::size_t b = 0; b < block_power.size(); ++b)
        block_power[b] += pm.leakage(static_cast<int>(b), 70.0);

    TextTable t({"domain", "uniform noise (%)", "optimised (%)",
                 "delta (%)", "moves", "mean shift (mm)"});
    double worst_delta = 0.0;
    for (int d = 0; d < 4; ++d) {  // representative core domains
        auto res = pdn::optimizePlacement(chip, d, design,
                                          block_power);
        double delta =
            (res.initialNoise - res.finalNoise) * 100.0;
        worst_delta = std::max(worst_delta, delta);
        t.addRow({chip.plan.domains()[static_cast<std::size_t>(d)]
                      .name,
                  TextTable::num(res.initialNoise * 100.0, 3),
                  TextTable::num(res.finalNoise * 100.0, 3),
                  TextTable::num(delta, 3),
                  std::to_string(res.acceptedMoves),
                  TextTable::num(res.meanDisplacementMm, 2)});
    }
    t.print(std::cout);

    std::printf("\nlargest uniform-vs-optimal gap: %.3f%% of Vdd "
                "(paper reports the uniform placement within 0.4%%)\n",
                worst_delta);
    return 0;
}
