/**
 * @file
 * Table 2: percentage of execution time spent in voltage
 * emergencies (noise > 10% of nominal Vdd) under OracT. Paper: every
 * benchmark stays below 1%, barnes worst at 0.67%, the lu kernels
 * and water_nsquared at zero — emergencies are rare enough that an
 * event-driven all-on override costs almost no efficiency.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main(int argc, char **argv)
{
    bench::banner("Table 2",
                  "% execution time in voltage emergencies under "
                  "OracT (paper: <1% everywhere, barnes 0.67%)");

    auto &simulation = bench::evaluationSim();
    auto sweep =
        sim::runSweep(simulation, {}, {core::PolicyKind::OracT},
                      true, bench::parseJobs(argc, argv));

    TextTable t({"benchmark", "% time in emergencies",
                 "max noise (%)"});
    double sum = 0.0;
    int n = 0;
    for (const auto &b : sweep.benchmarks) {
        const auto &r = sweep.at(b, core::PolicyKind::OracT);
        sum += r.emergencyFrac * 100.0;
        ++n;
        t.addRow({b, TextTable::num(r.emergencyFrac * 100.0, 3),
                  TextTable::num(r.maxNoiseFrac * 100.0, 1)});
    }
    t.addRow({"AVG", TextTable::num(sum / n, 3), ""});
    t.print(std::cout);
    return 0;
}
