/**
 * @file
 * Fig. 1: conversion efficiency vs. output load current for the eight
 * ISSCC 2015 regulator designs the paper surveys. Currents span five
 * decades across the designs; efficiencies peak between ~73% and ~91%.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "vreg/design.hh"

using namespace tg;

int
main()
{
    bench::banner("Fig. 1",
                  "eta vs I_out of the ISSCC'15 survey designs "
                  "(approximate digitisation)");

    auto survey = vreg::isscc2015Survey();
    for (const auto &entry : survey) {
        std::printf("\n%s — %s\n", entry.label.c_str(),
                    entry.topology.c_str());
        TextTable t({"I_out (A)", "eta (%)"});
        // Log sweep over each design's characterised range.
        double lo = std::log10(entry.curve.minX());
        double hi = std::log10(entry.curve.maxX());
        const int steps = 9;
        for (int i = 0; i <= steps; ++i) {
            double x = std::pow(10.0, lo + (hi - lo) * i / steps);
            t.addRow({TextTable::num(x, 5),
                      TextTable::num(entry.curve(x) * 100.0, 1)});
        }
        t.print(std::cout);
        std::printf("peak eta: %.1f%% at %.4g A\n",
                    entry.curve.maxValue() * 100.0,
                    entry.curve.argmax());
    }
    return 0;
}
