/**
 * @file
 * Fig. 8: a representative regulator's temperature and on/off state
 * over time under the Naive policy (lu_ncb) — the greedy
 * coolest-first selection swaps the regulator in and out at the 1 ms
 * decision points and its temperature swings by several degC.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main()
{
    bench::banner("Fig. 8",
                  "temperature + gating state of one VR under Naive "
                  "(lu_ncb); paper shows >5 degC swings");

    auto &simulation = bench::evaluationSim();
    const auto &chip = bench::evaluationChip();
    const auto &profile = workload::profileByName("lu_ncb");

    // Pass 1: find a representative regulator — one the policy
    // actually toggles (activity strictly between 15% and 85%).
    sim::RecordOptions scout;
    scout.noiseSamplesOverride = 0;
    auto survey = simulation.run(profile, core::PolicyKind::Naive,
                                 scout);
    int tracked = -1;
    for (std::size_t v = 0; v < survey.vrActivity.size(); ++v) {
        double a = survey.vrActivity[v];
        if (a > 0.15 && a < 0.85) {
            tracked = static_cast<int>(v);
            break;
        }
    }
    if (tracked < 0)
        tracked = 0;

    sim::RecordOptions opts;
    opts.noiseSamplesOverride = 0;
    opts.trackVr = tracked;
    auto r = simulation.run(profile, core::PolicyKind::Naive, opts);

    std::printf("tracked regulator: %s (activity %.0f%%)\n\n",
                chip.plan.vrs()[static_cast<std::size_t>(tracked)]
                    .name.c_str(),
                survey.vrActivity[static_cast<std::size_t>(tracked)] *
                    100.0);

    TextTable t({"time (us)", "T (degC)", "state"});
    for (std::size_t f = 0; f < r.trackedVrTemp.size(); f += 10)
        t.addRow({TextTable::num(f * 10.0, 0),
                  TextTable::num(r.trackedVrTemp[f], 2),
                  r.trackedVrOn[f] ? "ON" : "off"});
    t.print(std::cout);

    double lo = r.trackedVrTemp[0];
    double hi = lo;
    for (double temp : r.trackedVrTemp) {
        lo = std::min(lo, temp);
        hi = std::max(hi, temp);
    }
    std::printf("\ntemperature swing of the tracked VR: %.2f degC "
                "(%.2f .. %.2f)\n",
                hi - lo, lo, hi);
    return 0;
}
