/**
 * @file
 * Micro-benchmark of the parallel sweep engine and the artifact
 * cache.
 *
 * Legs (all over the same benchmark x policy grid, all asserted
 * bit-identical to each other):
 *
 *   1. ablation  — artifact cache disabled: every cell re-synthesises
 *      its traces and re-fits/re-factors from scratch.
 *   2. cold      — cache enabled but empty: pays the same work as the
 *      ablation once per distinct key, then reuses across the policy
 *      axis (8 policies share each benchmark's power trace).
 *   3. warm      — a fresh Simulation against the populated store:
 *      base factorisations, predictor fit and traces all hit.
 *   4. parallel  — the warm grid through the worker pool, asserting
 *      the sweep determinism contract at --jobs N.
 *   5. memo cold — whole-RunResult memoisation on (TG_CACHE_DIR or a
 *      scratch dir): populates the memo + disk tier.
 *   6. memo warm — the same grid answered from the memo.
 *
 * With TG_CACHE_DIR set the disk artifacts survive the process; a
 * second process run with --expect-warm asserts they are loaded
 * (nonzero disk hits) and bit-identical to a cache-off recompute.
 *
 *   ./microbench_sweep [--jobs N] [--processes N] [--quick]
 *                      [--expect-warm]
 *
 * --processes N adds a sharded leg: the same grid through N worker
 * processes (shard/coordinator.hh), asserted bit-identical to the
 * in-process ablation leg.
 *
 * --quick shrinks the grid (4 benchmarks x 3 policies) for CI smoke
 * runs; the default is the paper's full 14-benchmark x 8-policy
 * evaluation grid.
 */

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "bench_common.hh"
#include "cache/store.hh"
#include "shard/coordinator.hh"
#include "shard/worker.hh"

using namespace tg;

namespace {

using bench::compareGrids;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One timed pass: Simulation construction + sweep. */
struct Leg
{
    sim::SweepResult sweep;
    double constructS = 0.0; //!< Simulation construction wall-clock
    double totalS = 0.0;     //!< construction + sweep wall-clock
};

/**
 * Construct a fresh Simulation (so per-instance work — PDN base
 * factorisations, predictor fit — is paid or cache-hit inside the
 * timed region) and run the grid through it.
 */
Leg
runLeg(const std::vector<std::string> &benchmarks,
       const std::vector<core::PolicyKind> &policies, bool memoize,
       int jobs, const std::string &cache_dir = "")
{
    Leg leg;
    auto t0 = std::chrono::steady_clock::now();
    sim::SimConfig cfg{};
    cfg.memoizeResults = memoize;
    cfg.cacheDir = cache_dir;
    sim::Simulation simulation(bench::evaluationChip(), cfg);
    leg.constructS = secondsSince(t0);
    leg.sweep =
        sim::runSweep(simulation, benchmarks, policies, false, jobs);
    leg.totalS = secondsSince(t0);
    return leg;
}

/**
 * Second-process check (--expect-warm): the grid must be served from
 * the disk tier populated by an earlier process, and the served
 * results must be bit-identical to a cache-off recompute.
 */
int
expectWarm(const std::vector<std::string> &benchmarks,
           const std::vector<core::PolicyKind> &policies)
{
    bench::banner("microbench: warm artifact cache",
                  "second-process check: run-results must load from "
                  "the disk tier");
    cache::store().clear();
    cache::store().resetStats();

    Leg warm = runLeg(benchmarks, policies, true, 1);
    const std::size_t n =
        warm.sweep.benchmarks.size() * warm.sweep.policies.size();
    auto st = cache::store().stats();
    std::printf("%s\n", st.describe().c_str());

    const auto run_kind =
        static_cast<std::size_t>(cache::ArtifactKind::RunResult);
    if (st.diskHits == 0 && st.kind[run_kind].hits == 0) {
        std::fprintf(stderr,
                     "--expect-warm: no run-result cache hits — is "
                     "TG_CACHE_DIR set and populated by a prior "
                     "(cold) run?\n");
        return 1;
    }

    // Soundness check: the served artifacts must equal a recompute.
    cache::store().setEnabled(false);
    Leg recompute = runLeg(benchmarks, policies, false, 1);
    cache::store().setEnabled(true);

    if (compareGrids(warm.sweep, recompute.sweep, "warm(cached)",
                     "recompute"))
        return 1;
    std::printf("warm: %8.2f s   recompute: %8.2f s   (%.1fx)\n",
                warm.totalS, recompute.totalS,
                recompute.totalS / warm.totalS);
    std::printf("cache-served results bit-identical to recompute "
                "over %zu runs\n",
                n);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Re-exec'ed by a sharded-sweep coordinator (possibly our own
    // --processes leg below): become a worker instead of a bench.
    if (shard::isWorkerInvocation(argc, argv))
        return shard::workerMain(shard::basicSetupFactory());

    bool quick = false;
    bool expect_warm = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
        if (!std::strcmp(argv[i], "--expect-warm"))
            expect_warm = true;
    }
    int jobs = exec::resolveJobs(bench::parseJobs(argc, argv));
    int processes = bench::parseIntFlag(argc, argv, "--processes", 0);

    std::vector<std::string> benchmarks;
    std::vector<core::PolicyKind> policies;
    if (quick) {
        benchmarks = {"barnes", "fft", "lu_ncb", "water_s"};
        policies = {core::PolicyKind::AllOn, core::PolicyKind::OracT,
                    core::PolicyKind::PracVT};
    }

    if (expect_warm)
        return expectWarm(benchmarks, policies);

    bench::banner("microbench: parallel sweep + artifact cache",
                  quick ? "4-benchmark x 3-policy smoke grid"
                        : "full 14-benchmark x 8-policy grid");

    // --- leg 1: ablation, cache disabled --------------------------
    cache::store().clear();
    cache::store().resetStats();
    cache::store().setEnabled(false);
    Leg off = runLeg(benchmarks, policies, false, 1);
    const std::size_t n =
        off.sweep.benchmarks.size() * off.sweep.policies.size();
    std::printf("ablation (cache off, --jobs 1): %8.2f s for %zu "
                "runs (%.2f s construction)\n",
                off.totalS, n, off.constructS);

    // --- leg 2: cold, cache enabled but empty ---------------------
    cache::store().setEnabled(true);
    cache::store().clear();
    cache::store().resetStats();
    Leg cold = runLeg(benchmarks, policies, false, 1);
    std::printf("cold     (cache on,  --jobs 1): %8.2f s "
                "(policy-axis trace reuse: %.2fx vs ablation)\n",
                cold.totalS, off.totalS / cold.totalS);

    // --- leg 3: warm — fresh context, populated store -------------
    const std::uint64_t hits_before =
        cache::store().stats().hitsTotal();
    Leg warm = runLeg(benchmarks, policies, false, 1);
    auto st = cache::store().stats();
    std::printf("warm     (cache on,  --jobs 1): %8.2f s "
                "(%.1fx vs ablation; %.2f s construction)\n",
                warm.totalS, off.totalS / warm.totalS,
                warm.constructS);
    std::printf("%s\n", st.describe().c_str());
    if (st.hitsTotal() <= hits_before) {
        std::fprintf(stderr, "warm leg recorded no cache hits — the "
                             "prebuild caches are not engaging\n");
        return 1;
    }

    // --- leg 4: warm grid through the worker pool -----------------
    Leg par = runLeg(benchmarks, policies, false, jobs);
    std::printf("parallel (cache on,  --jobs %d): %8.2f s "
                "(%.2fx vs warm serial on %d hardware threads)\n",
                jobs, par.totalS, warm.totalS / par.totalS,
                exec::hardwareThreads());

    // --- determinism assertions across every leg ------------------
    int mismatches = 0;
    mismatches +=
        compareGrids(off.sweep, cold.sweep, "ablation", "cold");
    mismatches +=
        compareGrids(off.sweep, warm.sweep, "ablation", "warm");
    mismatches +=
        compareGrids(warm.sweep, par.sweep, "warm serial", "parallel");

    // --- optional leg: sharded across worker processes -------------
    // Workers re-exec this binary (--tg-worker guard in main) and
    // share whatever TG_CACHE_DIR names; the merged grid must be
    // bit-identical to the in-process ablation.
    if (processes > 0) {
        shard::ShardedSweepOptions sopt;
        sopt.benchmarks = off.sweep.benchmarks;
        sopt.policies = off.sweep.policies;
        sopt.processes = processes;
        sopt.jobsPerWorker = jobs;
        sim::SimConfig scfg{};
        scfg.memoizeResults = false;
        sopt.setup = shard::encodeBasicSetup(shard::ChipKind::Power8,
                                             0, scfg);
        shard::ShardedSweepStats stats;
        auto t0 = std::chrono::steady_clock::now();
        sim::SweepResult sharded = shard::runShardedSweep(sopt, &stats);
        double sharded_s = secondsSince(t0);
        std::printf("sharded  (%d procs x %d jobs):  %8.2f s "
                    "(%.2fx vs warm serial; %d shards, %d "
                    "reassigned)\n",
                    processes, jobs, sharded_s,
                    warm.totalS / sharded_s, stats.shardsDispatched,
                    stats.shardsReassigned);
        mismatches +=
            compareGrids(off.sweep, sharded, "ablation", "sharded");
    }

    // --- legs 5/6: whole-RunResult memoisation ---------------------
    // TG_CACHE_DIR doubles as the CI pair's shared disk tier; without
    // it the memo legs still run against a private scratch dir.
    const char *env_dir = std::getenv("TG_CACHE_DIR");
    std::string dir = env_dir ? env_dir : "";
    const bool scratch = dir.empty();
    if (scratch)
        dir = (std::filesystem::temp_directory_path() /
               "tg-microbench-cache")
                  .string();
    Leg memo_cold = runLeg(benchmarks, policies, true, 1, dir);
    std::printf("memo cold (populate,  --jobs 1): %8.2f s\n",
                memo_cold.totalS);
    Leg memo_warm = runLeg(benchmarks, policies, true, 1, dir);
    std::printf("memo warm (run-result, --jobs 1): %8.2f s "
                "(%.0fx vs ablation)\n",
                memo_warm.totalS, off.totalS / memo_warm.totalS);
    mismatches += compareGrids(off.sweep, memo_cold.sweep, "ablation",
                               "memo cold");
    mismatches += compareGrids(off.sweep, memo_warm.sweep, "ablation",
                               "memo warm");
    auto st2 = cache::store().stats();
    std::printf("disk tier: %llu run-results written to %s\n",
                static_cast<unsigned long long>(st2.diskWrites),
                dir.c_str());
    if (scratch)
        std::filesystem::remove_all(dir);

    if (mismatches) {
        std::fprintf(stderr, "%d mismatching runs — the artifact "
                             "cache or the parallel sweep is NOT "
                             "deterministic\n",
                     mismatches);
        return 1;
    }
    std::printf("determinism: all %zu runs bit-identical across "
                "ablation/cold/warm/parallel/memoised legs\n",
                n);
    return 0;
}
