/**
 * @file
 * Micro-benchmark of the parallel sweep engine: runs the same
 * benchmark x policy grid serially (--jobs 1) and through the worker
 * pool, reports both wall-clocks and the speedup, and asserts that
 * every SweepResult metric is bit-identical between the two — the
 * determinism contract of sim::runSweep().
 *
 *   ./microbench_sweep [--jobs N] [--quick]
 *
 * --quick shrinks the grid (4 benchmarks x 3 policies) for CI smoke
 * runs; the default is the paper's full 14-benchmark x 8-policy
 * evaluation grid.
 */

#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>

#include "bench_common.hh"

using namespace tg;

namespace {

/** Exact comparison of two vectors of doubles. */
bool
sameSeries(const std::vector<double> &a, const std::vector<double> &b)
{
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin());
}

/** Bitwise comparison of every metric two runs report. */
bool
identicalRuns(const sim::RunResult &a, const sim::RunResult &b,
              std::string &why)
{
    auto fail = [&](const char *field) {
        why = field;
        return false;
    };
    if (a.benchmark != b.benchmark) return fail("benchmark");
    if (a.policy != b.policy) return fail("policy");
    if (a.maxTmax != b.maxTmax) return fail("maxTmax");
    if (a.hottestSpot != b.hottestSpot) return fail("hottestSpot");
    if (a.maxGradient != b.maxGradient) return fail("maxGradient");
    if (a.maxNoiseFrac != b.maxNoiseFrac) return fail("maxNoiseFrac");
    if (a.emergencyFrac != b.emergencyFrac)
        return fail("emergencyFrac");
    if (a.avgRegulatorLoss != b.avgRegulatorLoss)
        return fail("avgRegulatorLoss");
    if (a.avgEta != b.avgEta) return fail("avgEta");
    if (a.avgActiveVrs != b.avgActiveVrs) return fail("avgActiveVrs");
    if (a.meanPower != b.meanPower) return fail("meanPower");
    if (a.overrideCount != b.overrideCount)
        return fail("overrideCount");
    if (!sameSeries(a.vrActivity, b.vrActivity))
        return fail("vrActivity");
    if (!sameSeries(a.vrAging, b.vrAging)) return fail("vrAging");
    if (a.agingImbalance != b.agingImbalance)
        return fail("agingImbalance");
    return true;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    int jobs = exec::resolveJobs(bench::parseJobs(argc, argv));

    std::vector<std::string> benchmarks;
    std::vector<core::PolicyKind> policies;
    if (quick) {
        benchmarks = {"barnes", "fft", "lu_ncb", "water_s"};
        policies = {core::PolicyKind::AllOn, core::PolicyKind::OracT,
                    core::PolicyKind::PracVT};
    }

    bench::banner("microbench: parallel sweep",
                  quick ? "4-benchmark x 3-policy smoke grid"
                        : "full 14-benchmark x 8-policy grid");

    auto &simulation = bench::evaluationSim();
    // Calibrate outside the timed region: both legs would otherwise
    // amortise the profiling pass differently.
    simulation.thermalPredictor();

    auto t0 = std::chrono::steady_clock::now();
    auto serial = sim::runSweep(simulation, benchmarks, policies,
                                false, 1);
    double serial_s = secondsSince(t0);
    std::printf("serial   (--jobs 1): %8.2f s for %zu runs\n",
                serial_s,
                serial.benchmarks.size() * serial.policies.size());

    t0 = std::chrono::steady_clock::now();
    auto parallel = sim::runSweep(simulation, benchmarks, policies,
                                  false, jobs);
    double parallel_s = secondsSince(t0);
    std::printf("parallel (--jobs %d): %8.2f s\n", jobs, parallel_s);
    std::printf("speedup: %.2fx on %d hardware threads\n",
                serial_s / parallel_s, exec::hardwareThreads());

    // --- determinism assertion ------------------------------------
    int mismatches = 0;
    for (const auto &b : serial.benchmarks) {
        for (auto k : serial.policies) {
            std::string why;
            if (!identicalRuns(serial.at(b, k), parallel.at(b, k),
                               why)) {
                std::fprintf(stderr,
                             "MISMATCH [%s / %s]: field %s differs "
                             "between --jobs 1 and --jobs %d\n",
                             b.c_str(), core::policyName(k),
                             why.c_str(), jobs);
                ++mismatches;
            }
        }
    }
    if (mismatches) {
        std::fprintf(stderr, "%d mismatching runs — the parallel "
                             "sweep is NOT deterministic\n",
                     mismatches);
        return 1;
    }
    std::printf("determinism: all %zu runs bit-identical between "
                "--jobs 1 and --jobs %d\n",
                serial.benchmarks.size() * serial.policies.size(),
                jobs);
    return 0;
}
