/**
 * @file
 * Fig. 7: regulator conversion-loss saving of demand-driven gating
 * (n_on regulators at the efficiency optimum) over all-on, per
 * benchmark. Paper: 10.4% (cholesky) .. 49.8% (raytrace), ~26.5% on
 * average — the saving tracks how far below the peak-efficiency load
 * the all-on configuration leaves each regulator.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main()
{
    bench::banner("Fig. 7",
                  "% regulator P_loss saving of gating vs all-on "
                  "(paper: chol ~10%, rayt ~50%, avg ~26.5%)");

    auto &simulation = bench::evaluationSim();
    sim::RecordOptions opts;
    opts.noiseSamplesOverride = 0;  // thermal/efficiency study only

    TextTable t({"benchmark", "all-on loss (W)", "gated loss (W)",
                 "saving (%)", "mean power (W)"});
    double sum = 0.0;
    int n = 0;
    for (const auto &profile : workload::splashProfiles()) {
        auto all_on = simulation.run(profile, core::PolicyKind::AllOn,
                                     opts);
        auto gated = simulation.run(profile, core::PolicyKind::OracT,
                                    opts);
        double saving = 100.0 * (1.0 - gated.avgRegulatorLoss /
                                           all_on.avgRegulatorLoss);
        sum += saving;
        ++n;
        t.addRow({profile.name,
                  TextTable::num(all_on.avgRegulatorLoss, 2),
                  TextTable::num(gated.avgRegulatorLoss, 2),
                  TextTable::num(saving, 1),
                  TextTable::num(gated.meanPower, 1)});
    }
    t.addRow({"AVG", "", "", TextTable::num(sum / n, 1), ""});
    t.print(std::cout);
    return 0;
}
