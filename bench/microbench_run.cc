/**
 * @file
 * google-benchmark timings of whole Simulation::run invocations, the
 * quantity the zero-allocation run-loop work optimises end to end:
 * one fixed benchmark profile through each policy tier on the full
 * POWER8 chip at default settings, plus a noise-free variant that
 * isolates the frame kernel (thermal step + regulator accounting)
 * from the sampled PDN windows.
 *
 * CI runs this as a smoke test and archives the JSON next to the
 * solver benchmarks; tools/check_bench_regression.py flags runs that
 * regress more than 25% against a checked-in baseline.
 *
 * Single-core caveat: the per-sample noise windows fan out across
 * domains on a thread pool (SimConfig::jobs / TG_JOBS), so wall-clock
 * gains beyond the allocation elimination need a multi-core host;
 * results are bit-identical at every worker count.
 */

#include <benchmark/benchmark.h>

#include "floorplan/power8.hh"
#include "sim/simulation.hh"
#include "workload/profile.hh"

using namespace tg;

namespace {

/**
 * One Simulation per benchmarked policy, built lazily and kept for
 * the whole process so the thermal factorisations, the fitted
 * predictor and the warm scratch buffers are shared across benchmark
 * iterations — the steady-state cost is what the numbers track.
 */
sim::Simulation &
sharedSim()
{
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    static sim::Simulation s(chip, sim::SimConfig{});
    return s;
}

void
runPolicy(benchmark::State &state, core::PolicyKind policy,
          int noise_samples_override)
{
    auto &s = sharedSim();
    const auto &profile = workload::profileByName("fft");
    sim::RecordOptions opts;
    opts.noiseSamplesOverride = noise_samples_override;
    for (auto _ : state) {
        auto res = s.run(profile, policy, opts);
        benchmark::DoNotOptimize(res.maxTmax);
    }
}

void
BM_RunAllOn(benchmark::State &state)
{
    runPolicy(state, core::PolicyKind::AllOn, -1);
}
BENCHMARK(BM_RunAllOn)->Unit(benchmark::kMillisecond);

void
BM_RunOracT(benchmark::State &state)
{
    runPolicy(state, core::PolicyKind::OracT, -1);
}
BENCHMARK(BM_RunOracT)->Unit(benchmark::kMillisecond);

void
BM_RunOracVT(benchmark::State &state)
{
    runPolicy(state, core::PolicyKind::OracVT, -1);
}
BENCHMARK(BM_RunOracVT)->Unit(benchmark::kMillisecond);

void
BM_RunPracVT(benchmark::State &state)
{
    runPolicy(state, core::PolicyKind::PracVT, -1);
}
BENCHMARK(BM_RunPracVT)->Unit(benchmark::kMillisecond);

/** Frame kernel only: no noise windows, so no PDN transients. */
void
BM_RunFrameLoopOnly(benchmark::State &state)
{
    runPolicy(state, core::PolicyKind::OracT, 0);
}
BENCHMARK(BM_RunFrameLoopOnly)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
