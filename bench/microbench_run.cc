/**
 * @file
 * google-benchmark timings of whole Simulation::run invocations, the
 * quantity the zero-allocation run-loop work optimises end to end:
 * one fixed benchmark profile through each policy tier on the full
 * POWER8 chip at default settings, plus a noise-free variant that
 * isolates the frame kernel (thermal step + regulator accounting)
 * from the sampled PDN windows.
 *
 * CI runs this as a smoke test and archives the JSON next to the
 * solver benchmarks; tools/check_bench_regression.py flags runs that
 * regress more than 25% against a checked-in baseline.
 *
 * Single-core caveat: the per-sample noise windows fan out across
 * domains on a thread pool (SimConfig::jobs / TG_JOBS), so wall-clock
 * gains beyond the allocation elimination need a multi-core host;
 * results are bit-identical at every worker count.
 */

#include <benchmark/benchmark.h>

#include "floorplan/power8.hh"
#include "sim/simulation.hh"
#include "workload/profile.hh"

using namespace tg;

namespace {

/**
 * One Simulation per benchmarked policy, built lazily and kept for
 * the whole process so the thermal factorisations, the fitted
 * predictor and the warm scratch buffers are shared across benchmark
 * iterations — the steady-state cost is what the numbers track.
 */
const floorplan::Chip &
sharedChip()
{
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    return chip;
}

sim::Simulation &
sharedSim()
{
    static sim::Simulation s(sharedChip(), sim::SimConfig{});
    return s;
}

void
runPolicy(benchmark::State &state, core::PolicyKind policy,
          int noise_samples_override)
{
    auto &s = sharedSim();
    const auto &profile = workload::profileByName("fft");
    sim::RecordOptions opts;
    opts.noiseSamplesOverride = noise_samples_override;
    for (auto _ : state) {
        auto res = s.run(profile, policy, opts);
        benchmark::DoNotOptimize(res.maxTmax);
    }
}

void
BM_RunAllOn(benchmark::State &state)
{
    runPolicy(state, core::PolicyKind::AllOn, -1);
}
BENCHMARK(BM_RunAllOn)->Unit(benchmark::kMillisecond);

void
BM_RunOracT(benchmark::State &state)
{
    runPolicy(state, core::PolicyKind::OracT, -1);
}
BENCHMARK(BM_RunOracT)->Unit(benchmark::kMillisecond);

void
BM_RunOracVT(benchmark::State &state)
{
    runPolicy(state, core::PolicyKind::OracVT, -1);
}
BENCHMARK(BM_RunOracVT)->Unit(benchmark::kMillisecond);

void
BM_RunPracVT(benchmark::State &state)
{
    runPolicy(state, core::PolicyKind::PracVT, -1);
}
BENCHMARK(BM_RunPracVT)->Unit(benchmark::kMillisecond);

/** Frame kernel only: no noise windows, so no PDN transients. */
void
BM_RunFrameLoopOnly(benchmark::State &state)
{
    runPolicy(state, core::PolicyKind::OracT, 0);
}
BENCHMARK(BM_RunFrameLoopOnly)->Unit(benchmark::kMillisecond);

/**
 * Coalescing ablation: BM_RunAllOn with the cross-epoch noise queue
 * disabled, so every epoch drains its own windows in the (narrow)
 * per-epoch batches the pre-coalescing run loop used. AllOn never
 * changes active sets, making it the maximal-coalescing policy; the
 * gap between this and BM_RunAllOn is the cross-epoch batching win
 * at default width. Results are bit-identical either way.
 */
void
BM_RunAllOnUncoalesced(benchmark::State &state)
{
    static sim::Simulation s(sharedChip(), [] {
        sim::SimConfig cfg;
        cfg.coalesceNoiseEpochs = false;
        return cfg;
    }());
    const auto &profile = workload::profileByName("fft");
    for (auto _ : state) {
        auto res = s.run(profile, core::PolicyKind::AllOn, {});
        benchmark::DoNotOptimize(res.maxTmax);
    }
}
BENCHMARK(BM_RunAllOnUncoalesced)->Unit(benchmark::kMillisecond);

/**
 * The batched lockstep transient kernel in isolation: Arg is the
 * batch width, and each iteration advances `width` independent noise
 * windows through domain 0's current factorisation in one
 * transientWindowBatch() call. Throughput is reported as
 * window-cycles per second (items/s), so the widths are directly
 * comparable: the results are bit-identical at every width, only the
 * rate moves.
 */
void
BM_TransientKernelBatch(benchmark::State &state)
{
    auto &s = sharedSim();
    const auto &pdn = s.domainPdn(0);
    const std::size_t n = static_cast<std::size_t>(pdn.nodeCount());
    constexpr std::size_t kCycles = 512;
    constexpr int kWarmup = 128;

    // Eight distinct load-step windows, built once per process.
    static const std::vector<std::vector<Amperes>> windows =
        [&]() {
            const auto &chip = s.chip();
            std::vector<std::vector<Amperes>> w;
            for (int i = 0; i < 8; ++i) {
                std::vector<Watts> bp(chip.plan.blocks().size(), 0.0);
                for (int b : chip.plan.domains()[0].blocks)
                    bp[static_cast<std::size_t>(b)] = 0.6 + 0.15 * i;
                auto base = pdn.nodeCurrents(bp);
                std::vector<Amperes> win(kCycles * n);
                for (std::size_t c = 0; c < kCycles; ++c) {
                    double m = 1.0 + 0.5 * ((c / 64) % 2);
                    for (std::size_t j = 0; j < n; ++j)
                        win[c * n + j] = base[j] * m;
                }
                w.push_back(std::move(win));
            }
            return w;
        }();

    int width = static_cast<int>(state.range(0));
    std::vector<pdn::DomainPdn::WindowSpec> specs;
    for (int i = 0; i < width; ++i)
        specs.push_back(
            {windows[static_cast<std::size_t>(i)].data(), n});
    std::vector<pdn::NoiseResult> out(
        static_cast<std::size_t>(width));
    for (auto _ : state) {
        pdn.transientWindowBatch(specs.data(), width, kCycles,
                                 kWarmup, false, out.data());
        benchmark::DoNotOptimize(out[0].maxNoiseFrac);
    }
    state.SetItemsProcessed(
        state.iterations() * static_cast<std::int64_t>(width) *
        static_cast<std::int64_t>(kCycles));
}
BENCHMARK(BM_TransientKernelBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/**
 * Repo-independent calibration workload: a fixed dense
 * matrix-multiply over plain buffers, touching nothing in tg::.
 * tools/check_bench_regression.py divides every benchmark's time by
 * this one before comparing against the checked-in baseline
 * (--normalize-by), so a baseline recorded on one machine class
 * still gates a faster or slower CI runner.
 */
void
BM_MachineCalibration(benchmark::State &state)
{
    constexpr int kN = 144;
    static std::vector<double> a, b, c;
    if (a.empty()) {
        a.resize(kN * kN);
        b.resize(kN * kN);
        c.resize(kN * kN, 0.0);
        for (int i = 0; i < kN * kN; ++i) {
            a[static_cast<std::size_t>(i)] = 1.0 + (i % 7) * 0.125;
            b[static_cast<std::size_t>(i)] = 2.0 - (i % 5) * 0.25;
        }
    }
    for (auto _ : state) {
        for (int i = 0; i < kN; ++i)
            for (int k = 0; k < kN; ++k) {
                double aik = a[static_cast<std::size_t>(i * kN + k)];
                for (int j = 0; j < kN; ++j)
                    c[static_cast<std::size_t>(i * kN + j)] +=
                        aik * b[static_cast<std::size_t>(k * kN + j)];
            }
        benchmark::DoNotOptimize(c.data());
    }
}
BENCHMARK(BM_MachineCalibration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
