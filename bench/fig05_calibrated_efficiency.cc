/**
 * @file
 * Fig. 5: the calibrated per-core-domain efficiency family — nine
 * FIVR-like component VRs (~1.5 A each at eta_peak = 90%) — for
 * several active counts, plus the effective gated envelope the
 * ThermoGater policies operate on.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "vreg/design.hh"
#include "vreg/network.hh"

using namespace tg;

int
main()
{
    bench::banner("Fig. 5",
                  "calibrated eta vs I_out for a 9-VR per-core "
                  "Vdd-domain (FIVR-like) + gated envelope");

    auto design = vreg::fivrDesign();
    vreg::RegulatorNetwork net(design, 9);

    const int counts[] = {2, 3, 4, 6, 8, 9};
    std::vector<std::string> header = {"I_out (A)"};
    for (int k : counts)
        header.push_back(std::to_string(k) + " act (%)");
    header.push_back("effective (%)");
    header.push_back("n_on");

    TextTable t(header);
    for (double i = 0.5; i <= 15.0; i += 0.5) {
        std::vector<std::string> row = {TextTable::num(i, 1)};
        for (int k : counts)
            row.push_back(
                TextTable::num(net.evaluate(i, k).eta * 100.0, 1));
        auto gated = net.evaluateGated(i);
        row.push_back(TextTable::num(gated.eta * 100.0, 1));
        row.push_back(std::to_string(gated.active));
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    std::printf("\nper-VR peak: %.2f A at eta %.1f%%; domain "
                "capacity %.1f A\n",
                design.curve.peakCurrent(),
                design.curve.peakEta() * 100.0, net.maxCurrent());
    return 0;
}
