/**
 * @file
 * Fig. 2: efficiency of the Intel 16-phase regulator for different
 * active-phase counts, plus the effective envelope that adaptive
 * phase gating sustains — a practically constant eta near the peak
 * over the whole 0..16 A range.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "vreg/design.hh"
#include "vreg/network.hh"

using namespace tg;

int
main()
{
    bench::banner("Fig. 2",
                  "eta of a 16-phase Intel-like buck regulator vs "
                  "I_out per active-phase count + gated envelope");

    auto design = vreg::intel16PhaseDesign();
    vreg::RegulatorNetwork net(design, 16);

    const int phase_counts[] = {2, 4, 8, 12, 16};
    std::vector<std::string> header = {"I_out (A)"};
    for (int k : phase_counts)
        header.push_back(std::to_string(k) + " ph (%)");
    header.push_back("effective (%)");
    header.push_back("n_on");

    TextTable t(header);
    for (double i = 0.5; i <= 16.0; i += 0.5) {
        std::vector<std::string> row = {TextTable::num(i, 1)};
        for (int k : phase_counts)
            row.push_back(
                TextTable::num(net.evaluate(i, k).eta * 100.0, 1));
        auto gated = net.evaluateGated(i);
        row.push_back(TextTable::num(gated.eta * 100.0, 1));
        row.push_back(std::to_string(gated.active));
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    // The paper's point: the envelope barely moves over the range.
    double lo = 1.0;
    double hi = 0.0;
    for (double i = 1.0; i <= 16.0; i += 0.25) {
        double eta = net.evaluateGated(i).eta;
        lo = std::min(lo, eta);
        hi = std::max(hi, eta);
    }
    std::printf("\ngated envelope over 1..16 A: %.1f%% .. %.1f%% "
                "(peak %.1f%%)\n",
                lo * 100.0, hi * 100.0,
                design.curve.peakEta() * 100.0);
    return 0;
}
