/**
 * @file
 * google-benchmark micro-benchmarks of the numerical kernels behind
 * the reproduction: LU factorisation/back-substitution, the thermal
 * RC step, the PDN transient cycle, and a full governor decision.
 * These document what makes the figure sweeps affordable (factor
 * once, back-substitute per step).
 *
 * The *Dense variants reconstruct the dense solve paths the sparse
 * engine replaced, so the sparse-vs-dense and cached-vs-uncached
 * speedups are tracked as first-class numbers in the benchmark JSON.
 */

#include <benchmark/benchmark.h>

#include "common/matrix.hh"
#include "common/sparse.hh"
#include "common/rng.hh"
#include "core/governor.hh"
#include "floorplan/power8.hh"
#include "pdn/domain_pdn.hh"
#include "thermal/model.hh"
#include "vreg/design.hh"
#include "vreg/network.hh"
#include "workload/cycles.hh"

using namespace tg;

namespace {

Matrix
randomSpd(std::size_t n, Rng &rng)
{
    Matrix a(n, n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c <= r; ++c) {
            double v = rng.uniform(-1.0, 1.0);
            a(r, c) = v;
            a(c, r) = v;
        }
        a(r, r) += static_cast<double>(n);  // diagonally dominant
    }
    return a;
}

void
BM_LuFactor(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(7);
    Matrix a = randomSpd(n, rng);
    for (auto _ : state) {
        LuSolver lu(a);
        benchmark::DoNotOptimize(lu.size());
    }
}
BENCHMARK(BM_LuFactor)->Arg(64)->Arg(256)->Arg(740);

void
BM_LuSolve(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(7);
    LuSolver lu(randomSpd(n, rng));
    std::vector<double> b(n, 1.0);
    for (auto _ : state) {
        auto x = lu.solve(b);
        benchmark::DoNotOptimize(x.data());
    }
}
BENCHMARK(BM_LuSolve)->Arg(64)->Arg(256)->Arg(740);

void
BM_ThermalStep(benchmark::State &state)
{
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    static const thermal::ThermalModel model(chip, {});
    auto temps = model.uniformState(55.0);
    std::vector<Watts> block(chip.plan.blocks().size(), 2.0);
    std::vector<Watts> vr(chip.plan.vrs().size(), 0.15);
    auto p = model.powerVector(block, vr);
    for (auto _ : state) {
        model.advance(temps, p);
        benchmark::DoNotOptimize(temps.data());
    }
}
BENCHMARK(BM_ThermalStep);

void
BM_ThermalStepDense(benchmark::State &state)
{
    // The dense path BM_ThermalStep replaced: full LU of the
    // (C/dt + G) matrix, O(n^2) back-substitution per step.
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    static const thermal::ThermalModel model(chip, {});
    static const LuSolver dense = [] {
        Matrix a = model.conductance().toDense();
        const auto &cap = model.heatCapacities();
        for (std::size_t i = 0; i < cap.size(); ++i)
            a(i, i) += cap[i] / model.step();
        return LuSolver(a);
    }();
    auto temps = model.uniformState(55.0);
    std::vector<Watts> block(chip.plan.blocks().size(), 2.0);
    std::vector<Watts> vr(chip.plan.vrs().size(), 0.15);
    auto p = model.powerVector(block, vr);
    const auto &cap = model.heatCapacities();
    const auto &amb = model.ambientInjection();
    std::vector<double> rhs(model.nodeCount());
    for (auto _ : state) {
        for (std::size_t i = 0; i < rhs.size(); ++i)
            rhs[i] = cap[i] / model.step() * temps[i] + p[i] + amb[i];
        dense.solveInPlace(rhs);
        temps.swap(rhs);
        benchmark::DoNotOptimize(temps.data());
    }
}
BENCHMARK(BM_ThermalStepDense);

void
BM_ThermalFactorSparse(benchmark::State &state)
{
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    static const thermal::ThermalModel model(chip, {});
    const SparseMatrix &g = model.conductance();
    for (auto _ : state) {
        SparseLdltSolver ldlt(g);
        benchmark::DoNotOptimize(ldlt.size());
    }
}
BENCHMARK(BM_ThermalFactorSparse);

void
BM_ThermalFactorDense(benchmark::State &state)
{
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    static const thermal::ThermalModel model(chip, {});
    static const Matrix g = model.conductance().toDense();
    for (auto _ : state) {
        LuSolver lu(g);
        benchmark::DoNotOptimize(lu.size());
    }
}
BENCHMARK(BM_ThermalFactorDense);

void
BM_PdnTransientWindow(benchmark::State &state)
{
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    static pdn::DomainPdn dp(chip, 0, vreg::fivrDesign(), {});
    std::vector<Watts> block(chip.plan.blocks().size(), 0.0);
    for (int b : chip.plan.domains()[0].blocks)
        block[static_cast<std::size_t>(b)] = 1.5;
    auto base = dp.nodeCurrents(block);
    Rng rng(11);
    auto mult = workload::synthesizeCycleMultipliers(0.8, 600, rng);
    std::vector<std::vector<Amperes>> window(
        600, std::vector<Amperes>(base.size()));
    for (std::size_t c = 0; c < 600; ++c)
        for (std::size_t i = 0; i < base.size(); ++i)
            window[c][i] = base[i] * mult[c];
    for (auto _ : state) {
        auto res = dp.transientWindow(window, 200);
        benchmark::DoNotOptimize(res.maxNoiseFrac);
    }
}
BENCHMARK(BM_PdnTransientWindow);

void
BM_SetActiveCacheHit(benchmark::State &state)
{
    // Alternate between two configurations so every call really
    // changes the active set (the short-circuit is a separate path)
    // and both are served from the LRU cache after the first lap.
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    static pdn::DomainPdn dp(chip, 0, vreg::fivrDesign(), {});
    std::vector<int> a = {0, 4, 8};
    std::vector<int> b = {0, 1, 2, 3, 4, 5, 6, 7, 8};
    dp.setActive(a);
    dp.setActive(b);
    bool flip = false;
    for (auto _ : state) {
        dp.setActive(flip ? a : b);
        flip = !flip;
        benchmark::DoNotOptimize(dp.active().data());
    }
}
BENCHMARK(BM_SetActiveCacheHit);

void
BM_SetActiveFresh(benchmark::State &state)
{
    // Cold path: the Woodbury downdate pair is rebuilt every call.
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    static pdn::DomainPdn dp(chip, 0, vreg::fivrDesign(), {});
    for (auto _ : state) {
        dp.clearFactorCache();
        dp.setActive({0, 4, 8});
        benchmark::DoNotOptimize(dp.active().data());
    }
}
BENCHMARK(BM_SetActiveFresh);

void
BM_SetActiveDense(benchmark::State &state)
{
    // The path setActive() replaced: assemble the bordered
    // [[G, -B], [B^T, R]] steady and transient matrices and run two
    // dense LU factorisations per reconfiguration.
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    static pdn::DomainPdn dp(chip, 0, vreg::fivrDesign(), {});
    static const Matrix g = dp.gridConductance().toDense();
    std::vector<int> active = {0, 4, 8};
    std::size_t n = static_cast<std::size_t>(dp.nodeCount());
    std::size_t m = active.size();
    double r_out = vreg::fivrDesign().outputResistance;
    double dt = dp.params().cycleTime;
    for (auto _ : state) {
        Matrix a(n + m, n + m, 0.0);
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                a(r, c) = g(r, c);
        for (std::size_t k = 0; k < m; ++k) {
            std::size_t node = static_cast<std::size_t>(
                dp.vrAttachNode(active[k]));
            a(node, n + k) = -1.0;
            a(n + k, node) = 1.0;
            a(n + k, n + k) = r_out;
        }
        LuSolver steady(a);
        for (std::size_t i = 0; i < n; ++i)
            a(i, i) += dp.nodeDecaps()[i] / dt;
        for (std::size_t k = 0; k < m; ++k)
            a(n + k, n + k) += dp.branchInductance(active[k]) / dt;
        LuSolver transient(a);
        benchmark::DoNotOptimize(steady.size());
        benchmark::DoNotOptimize(transient.size());
    }
}
BENCHMARK(BM_SetActiveDense);

void
BM_GovernorDecision(benchmark::State &state)
{
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    static pdn::DomainPdn dp(chip, 0, vreg::fivrDesign(), {});
    static vreg::RegulatorNetwork net(vreg::fivrDesign(), 9);

    core::Governor governor(core::PolicyKind::PracT, 16);
    std::vector<double> thetas(9, 28.0);
    core::PolicyToolkit kit;
    kit.pdn = &dp;
    kit.network = &net;
    kit.thetas = &thetas;

    core::DomainState st;
    st.domain = 0;
    st.demandNow = 7.0;
    st.demandNext = 7.5;
    st.vrTemps = {61, 62, 61.5, 64, 65, 64.5, 66, 67, 66.5};
    st.vrLossNow = {0.18, 0.18, 0.18, 0.18, 0.18, 0, 0, 0, 0};
    st.vrLossNextPerActive = 0.19;
    st.nodeCurrents.assign(
        static_cast<std::size_t>(dp.nodeCount()), 0.12);
    st.didt = 0.5;

    for (auto _ : state) {
        auto d = governor.decide(st, kit, false);
        benchmark::DoNotOptimize(d.active.data());
        ++st.decision;
    }
}
BENCHMARK(BM_GovernorDecision);

} // namespace

BENCHMARK_MAIN();
