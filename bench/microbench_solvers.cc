/**
 * @file
 * google-benchmark micro-benchmarks of the numerical kernels behind
 * the reproduction: LU factorisation/back-substitution, the thermal
 * RC step, the PDN transient cycle, and a full governor decision.
 * These document what makes the figure sweeps affordable (factor
 * once, back-substitute per step).
 */

#include <benchmark/benchmark.h>

#include "common/matrix.hh"
#include "common/rng.hh"
#include "core/governor.hh"
#include "floorplan/power8.hh"
#include "pdn/domain_pdn.hh"
#include "thermal/model.hh"
#include "vreg/design.hh"
#include "vreg/network.hh"
#include "workload/cycles.hh"

using namespace tg;

namespace {

Matrix
randomSpd(std::size_t n, Rng &rng)
{
    Matrix a(n, n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c <= r; ++c) {
            double v = rng.uniform(-1.0, 1.0);
            a(r, c) = v;
            a(c, r) = v;
        }
        a(r, r) += static_cast<double>(n);  // diagonally dominant
    }
    return a;
}

void
BM_LuFactor(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(7);
    Matrix a = randomSpd(n, rng);
    for (auto _ : state) {
        LuSolver lu(a);
        benchmark::DoNotOptimize(lu.size());
    }
}
BENCHMARK(BM_LuFactor)->Arg(64)->Arg(256)->Arg(740);

void
BM_LuSolve(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(7);
    LuSolver lu(randomSpd(n, rng));
    std::vector<double> b(n, 1.0);
    for (auto _ : state) {
        auto x = lu.solve(b);
        benchmark::DoNotOptimize(x.data());
    }
}
BENCHMARK(BM_LuSolve)->Arg(64)->Arg(256)->Arg(740);

void
BM_ThermalStep(benchmark::State &state)
{
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    static const thermal::ThermalModel model(chip, {});
    auto temps = model.uniformState(55.0);
    std::vector<Watts> block(chip.plan.blocks().size(), 2.0);
    std::vector<Watts> vr(chip.plan.vrs().size(), 0.15);
    auto p = model.powerVector(block, vr);
    for (auto _ : state) {
        model.advance(temps, p);
        benchmark::DoNotOptimize(temps.data());
    }
}
BENCHMARK(BM_ThermalStep);

void
BM_PdnTransientWindow(benchmark::State &state)
{
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    static pdn::DomainPdn dp(chip, 0, vreg::fivrDesign(), {});
    std::vector<Watts> block(chip.plan.blocks().size(), 0.0);
    for (int b : chip.plan.domains()[0].blocks)
        block[static_cast<std::size_t>(b)] = 1.5;
    auto base = dp.nodeCurrents(block);
    Rng rng(11);
    auto mult = workload::synthesizeCycleMultipliers(0.8, 600, rng);
    std::vector<std::vector<Amperes>> window(
        600, std::vector<Amperes>(base.size()));
    for (std::size_t c = 0; c < 600; ++c)
        for (std::size_t i = 0; i < base.size(); ++i)
            window[c][i] = base[i] * mult[c];
    for (auto _ : state) {
        auto res = dp.transientWindow(window, 200);
        benchmark::DoNotOptimize(res.maxNoiseFrac);
    }
}
BENCHMARK(BM_PdnTransientWindow);

void
BM_GovernorDecision(benchmark::State &state)
{
    static const floorplan::Chip chip = floorplan::buildPower8Chip();
    static pdn::DomainPdn dp(chip, 0, vreg::fivrDesign(), {});
    static vreg::RegulatorNetwork net(vreg::fivrDesign(), 9);

    core::Governor governor(core::PolicyKind::PracT, 16);
    std::vector<double> thetas(9, 28.0);
    core::PolicyToolkit kit;
    kit.pdn = &dp;
    kit.network = &net;
    kit.thetas = &thetas;

    core::DomainState st;
    st.domain = 0;
    st.demandNow = 7.0;
    st.demandNext = 7.5;
    st.vrTemps = {61, 62, 61.5, 64, 65, 64.5, 66, 67, 66.5};
    st.vrLossNow = {0.18, 0.18, 0.18, 0.18, 0.18, 0, 0, 0, 0};
    st.vrLossNextPerActive = 0.19;
    st.nodeCurrents.assign(
        static_cast<std::size_t>(dp.nodeCount()), 0.12);
    st.didt = 0.5;

    for (auto _ : state) {
        auto d = governor.decide(st, kit, false);
        benchmark::DoNotOptimize(d.active.data());
        ++st.decision;
    }
}
BENCHMARK(BM_GovernorDecision);

} // namespace

BENCHMARK_MAIN();
