/**
 * @file
 * Ablation: gating decision interval.
 *
 * The paper (footnote 5) picks 1 ms decisions and notes a 100x
 * shorter period improves accuracy by less than 1%. This sweep runs
 * OracT on lu_ncb across decision intervals and shows the thermal
 * metrics saturating as the interval shrinks, while very long
 * intervals lag the demand and degrade both heat and efficiency.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main()
{
    bench::banner("ablation: decision interval",
                  "OracT on lu_ncb; paper uses 1 ms and reports "
                  "<1% gain from a 100x shorter period");

    const auto &chip = bench::evaluationChip();
    const auto &profile = workload::profileByName("lu_ncb");

    TextTable t({"interval (ms)", "Tmax (C)", "gradient (C)",
                 "noise (%)", "eta (%)", "VR loss (W)"});
    for (double ms : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        sim::SimConfig cfg;
        cfg.decisionInterval = ms * 1e-3;
        sim::Simulation simulation(chip, cfg);
        auto r = simulation.run(profile, core::PolicyKind::OracT);
        t.addRow({TextTable::num(ms, 2), TextTable::num(r.maxTmax, 2),
                  TextTable::num(r.maxGradient, 2),
                  TextTable::num(r.maxNoiseFrac * 100.0, 1),
                  TextTable::num(r.avgEta * 100.0, 2),
                  TextTable::num(r.avgRegulatorLoss, 2)});
    }
    t.print(std::cout);
    return 0;
}
