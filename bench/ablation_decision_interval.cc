/**
 * @file
 * Ablation: gating decision interval.
 *
 * The paper (footnote 5) picks 1 ms decisions and notes a 100x
 * shorter period improves accuracy by less than 1%. This sweep runs
 * OracT on lu_ncb across decision intervals and shows the thermal
 * metrics saturating as the interval shrinks, while very long
 * intervals lag the demand and degrade both heat and efficiency.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main(int argc, char **argv)
{
    bench::banner("ablation: decision interval",
                  "OracT on lu_ncb; paper uses 1 ms and reports "
                  "<1% gain from a 100x shorter period");

    const auto &chip = bench::evaluationChip();
    const auto &profile = workload::profileByName("lu_ncb");

    // Every interval needs its own Simulation (the thermal model is
    // factored for the configured step schedule), so the points are
    // independent and fan out across workers; each result lands in
    // its pre-assigned slot to keep the table order deterministic.
    const std::vector<double> intervals = {0.25, 0.5, 1.0, 2.0, 4.0};
    std::vector<sim::RunResult> results(intervals.size());
    exec::parallelFor(intervals.size(), bench::parseJobs(argc, argv),
                      [&](int, std::size_t i) {
        sim::SimConfig cfg;
        cfg.decisionInterval = intervals[i] * 1e-3;
        sim::Simulation simulation(chip, cfg);
        results[i] = simulation.run(profile, core::PolicyKind::OracT);
    });

    TextTable t({"interval (ms)", "Tmax (C)", "gradient (C)",
                 "noise (%)", "eta (%)", "VR loss (W)"});
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        const auto &r = results[i];
        t.addRow({TextTable::num(intervals[i], 2),
                  TextTable::num(r.maxTmax, 2),
                  TextTable::num(r.maxGradient, 2),
                  TextTable::num(r.maxNoiseFrac * 100.0, 1),
                  TextTable::num(r.avgEta * 100.0, 2),
                  TextTable::num(r.avgRegulatorLoss, 2)});
    }
    t.print(std::cout);
    return 0;
}
