/**
 * @file
 * Fig. 6: evolution of the total power demand and the cumulative
 * active-regulator count (sum of the per-domain n_on) over the
 * execution of lu_ncb — regulator activity closely tracks the
 * temporal power-demand changes.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main()
{
    bench::banner("Fig. 6",
                  "total power demand and #active regulators over "
                  "time (lu_ncb, 8 threads, gated)");

    auto &simulation = bench::evaluationSim();
    sim::RecordOptions opts;
    opts.timeSeries = true;
    opts.noiseSamplesOverride = 0;
    auto r = simulation.run(workload::profileByName("lu_ncb"),
                            core::PolicyKind::OracT, opts);

    TextTable t({"time (us)", "power (W)", "#active VRs"});
    // Subsample the 10 us frames to keep the series printable.
    for (std::size_t f = 0; f < r.timeUs.size(); f += 10)
        t.addRow({TextTable::num(r.timeUs[f], 0),
                  TextTable::num(r.totalPowerW[f], 1),
                  TextTable::num(r.activeVrs[f], 0)});
    t.print(std::cout);

    // Quantify the tracking the figure shows: correlation between
    // the power demand and the active count.
    double mp = 0.0;
    double ma = 0.0;
    std::size_t n = r.timeUs.size();
    for (std::size_t f = 0; f < n; ++f) {
        mp += r.totalPowerW[f];
        ma += r.activeVrs[f];
    }
    mp /= n;
    ma /= n;
    double num = 0.0;
    double dp = 0.0;
    double da = 0.0;
    for (std::size_t f = 0; f < n; ++f) {
        num += (r.totalPowerW[f] - mp) * (r.activeVrs[f] - ma);
        dp += (r.totalPowerW[f] - mp) * (r.totalPowerW[f] - mp);
        da += (r.activeVrs[f] - ma) * (r.activeVrs[f] - ma);
    }
    std::printf("\nmean power %.1f W, mean active %.1f of 96, "
                "power<->activity correlation %.3f\n",
                mp, ma, num / std::sqrt(dp * da));
    return 0;
}
