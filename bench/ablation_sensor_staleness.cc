/**
 * @file
 * Ablation: thermal-sensor staleness.
 *
 * PracT's gap to OracT comes mostly from the 100 us sensor delay
 * plus the prediction error of the linear model (paper Section 6.3).
 * This sweep varies the sensor delay from ideal (0) to a whole
 * decision interval and shows the practical policy degrading
 * gracefully — the ranking-based selection tolerates stale inputs.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main(int argc, char **argv)
{
    bench::banner("ablation: sensor staleness",
                  "PracT on water_s vs sensor delay (paper assumes "
                  "100 us)");

    const auto &chip = bench::evaluationChip();
    const auto &profile = workload::profileByName("water_s");
    const int jobs = bench::parseJobs(argc, argv);

    // Slot 0 is the OracT reference; the rest sweep PracT over the
    // sensor delay. Each point owns its Simulation (the sensor model
    // is part of the config), so the grid fans out across workers
    // with deterministic result slots.
    const std::vector<double> delays = {0.0,   50.0,  100.0,
                                        250.0, 500.0, 1000.0};
    std::vector<sim::RunResult> results(delays.size() + 1);
    exec::parallelFor(results.size(), jobs, [&](int, std::size_t i) {
        sim::SimConfig cfg;
        if (i == 0) {
            sim::Simulation simulation(chip, cfg);
            results[i] =
                simulation.run(profile, core::PolicyKind::OracT);
            return;
        }
        cfg.sensorParams.delay = delays[i - 1] * 1e-6;
        sim::Simulation simulation(chip, cfg);
        results[i] = simulation.run(profile, core::PolicyKind::PracT);
    });

    std::printf("OracT reference: Tmax %.2f, gradient %.2f, "
                "noise %.1f%%\n\n",
                results[0].maxTmax, results[0].maxGradient,
                results[0].maxNoiseFrac * 100.0);

    TextTable t({"delay (us)", "Tmax (C)", "gradient (C)",
                 "noise (%)", "eta (%)"});
    for (std::size_t i = 0; i < delays.size(); ++i) {
        const auto &r = results[i + 1];
        t.addRow({TextTable::num(delays[i], 0),
                  TextTable::num(r.maxTmax, 2),
                  TextTable::num(r.maxGradient, 2),
                  TextTable::num(r.maxNoiseFrac * 100.0, 1),
                  TextTable::num(r.avgEta * 100.0, 2)});
    }
    t.print(std::cout);
    return 0;
}
