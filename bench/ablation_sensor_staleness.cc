/**
 * @file
 * Ablation: thermal-sensor staleness.
 *
 * PracT's gap to OracT comes mostly from the 100 us sensor delay
 * plus the prediction error of the linear model (paper Section 6.3).
 * This sweep varies the sensor delay from ideal (0) to a whole
 * decision interval and shows the practical policy degrading
 * gracefully — the ranking-based selection tolerates stale inputs.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main()
{
    bench::banner("ablation: sensor staleness",
                  "PracT on water_s vs sensor delay (paper assumes "
                  "100 us)");

    const auto &chip = bench::evaluationChip();
    const auto &profile = workload::profileByName("water_s");

    // The oracle reference.
    {
        sim::Simulation simulation(chip, sim::SimConfig{});
        auto r = simulation.run(profile, core::PolicyKind::OracT);
        std::printf("OracT reference: Tmax %.2f, gradient %.2f, "
                    "noise %.1f%%\n\n",
                    r.maxTmax, r.maxGradient,
                    r.maxNoiseFrac * 100.0);
    }

    TextTable t({"delay (us)", "Tmax (C)", "gradient (C)",
                 "noise (%)", "eta (%)"});
    for (double us : {0.0, 50.0, 100.0, 250.0, 500.0, 1000.0}) {
        sim::SimConfig cfg;
        cfg.sensorParams.delay = us * 1e-6;
        sim::Simulation simulation(chip, cfg);
        auto r = simulation.run(profile, core::PolicyKind::PracT);
        t.addRow({TextTable::num(us, 0), TextTable::num(r.maxTmax, 2),
                  TextTable::num(r.maxGradient, 2),
                  TextTable::num(r.maxNoiseFrac * 100.0, 1),
                  TextTable::num(r.avgEta * 100.0, 2)});
    }
    t.print(std::cout);
    return 0;
}
