/**
 * @file
 * Fig. 11: maximum voltage noise (% of nominal Vdd) per benchmark
 * under the six regulated schemes (off-chip has no on-chip PDN to
 * perturb). Paper shape: thermal-only gating inflates the maximum
 * noise ~79% over all-on; OracV stays within ~28%; the *VT policies
 * converge back to the all-on profile; 10% of Vdd marks a voltage
 * emergency.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main(int argc, char **argv)
{
    bench::banner("Fig. 11",
                  "maximum voltage noise (% of Vdd) per policy; "
                  "emergency threshold = 10%");

    auto &simulation = bench::evaluationSim();
    std::vector<core::PolicyKind> policies = {
        core::PolicyKind::OracT,  core::PolicyKind::OracV,
        core::PolicyKind::OracVT, core::PolicyKind::PracT,
        core::PolicyKind::PracVT, core::PolicyKind::AllOn,
    };
    auto sweep = sim::runSweep(simulation, {}, policies, true,
                               bench::parseJobs(argc, argv));

    std::vector<std::string> header = {"benchmark"};
    for (auto k : sweep.policies)
        header.push_back(core::policyName(k));
    TextTable t(header);
    for (const auto &b : sweep.benchmarks) {
        std::vector<std::string> row = {b};
        for (auto k : sweep.policies)
            row.push_back(TextTable::num(
                sweep.at(b, k).maxNoiseFrac * 100.0, 1));
        t.addRow(std::move(row));
    }
    auto metric = [](const sim::RunResult &r) {
        return r.maxNoiseFrac * 100.0;
    };
    std::vector<std::string> mx = {"MAX"};
    for (auto k : sweep.policies)
        mx.push_back(TextTable::num(sweep.maximum(k, metric), 2));
    t.addRow(std::move(mx));
    std::vector<std::string> avg = {"AVG"};
    for (auto k : sweep.policies)
        avg.push_back(TextTable::num(sweep.average(k, metric), 2));
    t.addRow(std::move(avg));
    t.print(std::cout);

    std::printf("\nheadline: OracT vs all-on %+0.1f%% relative "
                "(paper +79.3%%); OracV vs all-on %+0.1f%% (paper "
                "within +28.4%%); PracVT MAX %.2f%% vs all-on MAX "
                "%.2f%% (paper 13.22%% vs 13.05%%)\n",
                100.0 * (sweep.average(core::PolicyKind::OracT,
                                       metric) /
                             sweep.average(core::PolicyKind::AllOn,
                                           metric) -
                         1.0),
                100.0 * (sweep.average(core::PolicyKind::OracV,
                                       metric) /
                             sweep.average(core::PolicyKind::AllOn,
                                           metric) -
                         1.0),
                sweep.maximum(core::PolicyKind::PracVT, metric),
                sweep.maximum(core::PolicyKind::AllOn, metric));
    return 0;
}
