/**
 * @file
 * Fig. 13: per-regulator activity rate (fraction of execution time
 * active) for the 72 core-domain VRs under OracT vs OracV (lu_ncb),
 * binned by location: VRs over logic units vs over on-chip memory.
 * Paper: OracT keeps the logic-side regulators off; OracV does the
 * opposite.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main()
{
    bench::banner("Fig. 13",
                  "VR activity rates, logic- vs memory-side "
                  "(lu_ncb): OracT vs OracV");

    auto &simulation = bench::evaluationSim();
    const auto &chip = bench::evaluationChip();
    const auto &profile = workload::profileByName("lu_ncb");

    sim::RecordOptions opts;
    opts.noiseSamplesOverride = 0;
    auto orac_t =
        simulation.run(profile, core::PolicyKind::OracT, opts);
    auto orac_v =
        simulation.run(profile, core::PolicyKind::OracV, opts);

    TextTable t({"VR", "host", "side", "OracT (%)", "OracV (%)"});
    double sum_t[2] = {0.0, 0.0};  // [logic, memory]
    double sum_v[2] = {0.0, 0.0};
    int count[2] = {0, 0};
    const auto &vrs = chip.plan.vrs();
    for (std::size_t v = 0; v < vrs.size(); ++v) {
        const auto &dom = chip.plan.domains()[static_cast<std::size_t>(
            vrs[v].domain)];
        if (dom.kind != floorplan::DomainKind::Core)
            continue;  // the figure covers the 72 core-domain VRs
        int side = vrs[v].memorySide ? 1 : 0;
        sum_t[side] += orac_t.vrActivity[v];
        sum_v[side] += orac_v.vrActivity[v];
        ++count[side];
        const auto &host = chip.plan.blocks()[static_cast<std::size_t>(
            vrs[v].hostBlock)];
        t.addRow({vrs[v].name, floorplan::unitKindName(host.kind),
                  vrs[v].memorySide ? "memory" : "logic",
                  TextTable::num(orac_t.vrActivity[v] * 100.0, 0),
                  TextTable::num(orac_v.vrActivity[v] * 100.0, 0)});
    }
    t.print(std::cout);

    std::printf("\ngroup averages — logic-side (%d VRs): OracT "
                "%.0f%%, OracV %.0f%%; memory-side (%d VRs): OracT "
                "%.0f%%, OracV %.0f%%\n",
                count[0], 100.0 * sum_t[0] / count[0],
                100.0 * sum_v[0] / count[0], count[1],
                100.0 * sum_t[1] / count[1],
                100.0 * sum_v[1] / count[1]);
    return 0;
}
