/**
 * @file
 * Ablation: component-regulator count per domain.
 *
 * The paper's footnote 2 states its 96-regulator configuration was
 * the largest its simulators could afford, and that a *lower*
 * regulator count worsens both the thermal and the voltage-noise
 * profile (each regulator then carries more current, dissipates more
 * loss on one site, and supplies its load from farther away). This
 * sweep varies the per-core/per-L3 regulator counts under OracT and
 * all-on to show exactly that trend.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main()
{
    bench::banner("ablation: regulators per domain",
                  "fewer component VRs -> worse thermal and noise "
                  "(paper footnote 2)");

    const auto &profile = workload::profileByName("fft");

    TextTable t({"VRs/core", "VRs/L3", "total", "policy", "Tmax (C)",
                 "gradient (C)", "noise (%)", "eta (%)"});
    struct Cfg
    {
        int core;
        int l3;
    };
    for (Cfg c : {Cfg{4, 2}, Cfg{6, 2}, Cfg{9, 3}, Cfg{12, 4}}) {
        auto chip = floorplan::buildPower8ChipVariant(c.core, c.l3);
        sim::Simulation simulation(chip, sim::SimConfig{});
        for (auto kind :
             {core::PolicyKind::AllOn, core::PolicyKind::OracT}) {
            auto r = simulation.run(profile, kind);
            t.addRow({std::to_string(c.core), std::to_string(c.l3),
                      std::to_string(static_cast<int>(
                          chip.plan.vrs().size())),
                      core::policyName(kind),
                      TextTable::num(r.maxTmax, 2),
                      TextTable::num(r.maxGradient, 2),
                      TextTable::num(r.maxNoiseFrac * 100.0, 1),
                      TextTable::num(r.avgEta * 100.0, 2)});
        }
    }
    t.print(std::cout);
    return 0;
}
