/**
 * @file
 * Ablation: voltage-emergency threshold.
 *
 * The paper defines an emergency as noise beyond 10% of nominal Vdd
 * (the line in Fig. 11). A tighter threshold makes PracVT override
 * to all-on more often — better noise, slightly worse efficiency and
 * thermals; a looser one converges to plain PracT. This sweep
 * quantifies that trade-off.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main()
{
    bench::banner("ablation: emergency threshold",
                  "PracVT on barnes vs threshold (paper uses 10% of "
                  "Vdd)");

    const auto &chip = bench::evaluationChip();
    const auto &profile = workload::profileByName("barnes");

    TextTable t({"threshold (%)", "overrides", "noise (%)",
                 "emerg (%)", "Tmax (C)", "eta (%)"});
    for (double frac : {0.06, 0.08, 0.10, 0.14, 0.20}) {
        sim::SimConfig cfg;
        cfg.pdnParams.emergencyFrac = frac;
        sim::Simulation simulation(chip, cfg);
        auto r = simulation.run(profile, core::PolicyKind::PracVT);
        t.addRow({TextTable::num(frac * 100.0, 0),
                  std::to_string(r.overrideCount),
                  TextTable::num(r.maxNoiseFrac * 100.0, 1),
                  TextTable::num(r.emergencyFrac * 100.0, 3),
                  TextTable::num(r.maxTmax, 2),
                  TextTable::num(r.avgEta * 100.0, 2)});
    }
    t.print(std::cout);
    return 0;
}
