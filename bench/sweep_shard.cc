/**
 * @file
 * Scaling ladder of the sharded multi-process sweep engine.
 *
 * Runs the (benchmark x policy) grid three ways and asserts every
 * variant bit-identical to the single-threaded single-process
 * baseline (the PR 1/3/6 determinism contract, extended across
 * process boundaries by shard/coordinator.hh):
 *
 *   1. serial       — runSweep, one thread, one process.
 *   2. threads-only — runSweep through the in-process worker pool
 *                     (--jobs N).
 *   3. sharded      — runShardedSweep at each worker count of the
 *                     ladder (default P in {1, 2, 4}; a single
 *                     --processes N runs just that point), with
 *                     --jobs N threads inside every worker.
 *
 * Workers re-exec this binary in --tg-worker mode and share whatever
 * TG_CACHE_DIR names, so a populated disk tier warms all processes.
 *
 *   ./sweep_shard [--quick] [--jobs N] [--processes N]
 *
 * --quick shrinks the grid to 4 benchmarks x 3 policies for CI smoke
 * runs. Exit status is nonzero on any cross-leg bit mismatch.
 */

#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_common.hh"
#include "cache/store.hh"
#include "shard/coordinator.hh"
#include "shard/worker.hh"

using namespace tg;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One in-process runSweep with a fresh Simulation, timed. */
sim::SweepResult
runInProcess(const std::vector<std::string> &benchmarks,
             const std::vector<core::PolicyKind> &policies, int jobs,
             double &seconds)
{
    cache::store().clear();
    cache::store().resetStats();
    auto t0 = std::chrono::steady_clock::now();
    sim::SimConfig cfg{};
    cfg.memoizeResults = false; // time the sweep, not the memo
    sim::Simulation simulation(bench::evaluationChip(), cfg);
    sim::SweepResult r =
        sim::runSweep(simulation, benchmarks, policies, false, jobs);
    seconds = secondsSince(t0);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    // Re-exec'ed by the coordinator below: become a worker.
    if (shard::isWorkerInvocation(argc, argv))
        return shard::workerMain(shard::basicSetupFactory());

    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    const int jobs = exec::resolveJobs(bench::parseJobs(argc, argv));
    const int processes =
        bench::parseIntFlag(argc, argv, "--processes", 0);

    std::vector<std::string> benchmarks;
    std::vector<core::PolicyKind> policies;
    if (quick) {
        benchmarks = {"barnes", "fft", "lu_ncb", "water_s"};
        policies = {core::PolicyKind::AllOn, core::PolicyKind::OracT,
                    core::PolicyKind::PracVT};
    }

    bench::banner(
        "sweep_shard: multi-process scaling ladder",
        quick ? "4-benchmark x 3-policy smoke grid"
              : "full 14-benchmark x 8-policy evaluation grid");

    // --- leg 1: serial single-process baseline --------------------
    double serial_s = 0.0;
    sim::SweepResult serial =
        runInProcess(benchmarks, policies, 1, serial_s);
    const std::size_t n =
        serial.benchmarks.size() * serial.policies.size();
    std::printf("serial        (1 proc  x 1 job):  %8.2f s for %zu "
                "cells\n",
                serial_s, n);

    int mismatches = 0;

    // --- leg 2: threads-only ---------------------------------------
    double threads_s = 0.0;
    sim::SweepResult threads =
        runInProcess(serial.benchmarks, serial.policies, jobs,
                     threads_s);
    std::printf("threads-only  (1 proc  x %d job%s): %8.2f s "
                "(%.2fx vs serial on %d hardware threads)\n",
                jobs, jobs == 1 ? "" : "s", threads_s,
                serial_s / threads_s, exec::hardwareThreads());
    mismatches += bench::compareGrids(serial, threads, "serial",
                                      "threads-only");

    // --- leg 3: the process ladder ---------------------------------
    std::vector<int> ladder;
    if (processes > 0)
        ladder = {processes};
    else
        ladder = {1, 2, 4};

    sim::SimConfig worker_cfg{};
    worker_cfg.memoizeResults = false;
    for (int p : ladder) {
        shard::ShardedSweepOptions sopt;
        sopt.benchmarks = serial.benchmarks;
        sopt.policies = serial.policies;
        sopt.processes = p;
        sopt.jobsPerWorker = jobs;
        sopt.setup = shard::encodeBasicSetup(shard::ChipKind::Power8,
                                             0, worker_cfg);
        shard::ShardedSweepStats stats;
        auto t0 = std::chrono::steady_clock::now();
        sim::SweepResult sharded =
            shard::runShardedSweep(sopt, &stats);
        const double s = secondsSince(t0);
        std::printf("sharded       (%d procs x %d job%s): %8.2f s "
                    "(%.2fx vs serial; %d shards, %d reassigned, "
                    "%d deaths)\n",
                    p, jobs, jobs == 1 ? "" : "s", s, serial_s / s,
                    stats.shardsDispatched, stats.shardsReassigned,
                    stats.workerDeaths);
        mismatches +=
            bench::compareGrids(serial, sharded, "serial", "sharded");
    }

    if (mismatches) {
        std::fprintf(stderr,
                     "%d mismatching cells — the sharded sweep is "
                     "NOT bit-identical to the serial baseline\n",
                     mismatches);
        return 1;
    }
    std::printf("determinism: all %zu cells bit-identical across "
                "serial/threads/process ladder\n",
                n);
    return 0;
}
