/**
 * @file
 * Fig. 14: per-cycle voltage-noise waveform of the most critical
 * sample window of fft under OracT vs OracV — gating on spatial
 * voltage-noise information cuts the worst droop substantially
 * (paper: -28.2%).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main()
{
    bench::banner("Fig. 14",
                  "worst-sample noise waveform (fft): OracT vs "
                  "OracV");

    auto &simulation = bench::evaluationSim();
    const auto &profile = workload::profileByName("fft");

    sim::RecordOptions opts;
    opts.noiseTrace = true;
    auto orac_t =
        simulation.run(profile, core::PolicyKind::OracT, opts);
    auto orac_v =
        simulation.run(profile, core::PolicyKind::OracV, opts);

    std::printf("OracT worst window: domain %d at t=%.0f us; OracV "
                "worst window: domain %d at t=%.0f us\n\n",
                orac_t.noiseTraceDomain, orac_t.noiseTraceTimeUs,
                orac_v.noiseTraceDomain, orac_v.noiseTraceTimeUs);

    std::size_t len =
        std::min(orac_t.noiseTrace.size(), orac_v.noiseTrace.size());
    TextTable t({"cycle", "OracT noise (%)", "OracV noise (%)"});
    for (std::size_t c = 0; c < len; c += 10)
        t.addRow({std::to_string(c),
                  TextTable::num(orac_t.noiseTrace[c] * 100.0, 2),
                  TextTable::num(orac_v.noiseTrace[c] * 100.0, 2)});
    t.print(std::cout);

    std::printf("\nmax noise: OracT %.2f%%, OracV %.2f%% "
                "(%+.1f%% relative; paper: OracV -28.2%% on the "
                "critical fft sample)\n",
                orac_t.maxNoiseFrac * 100.0,
                orac_v.maxNoiseFrac * 100.0,
                100.0 * (orac_v.maxNoiseFrac / orac_t.maxNoiseFrac -
                         1.0));
    return 0;
}
