/**
 * @file
 * Regulator aging under the gating policies (paper Section 7).
 *
 * The paper argues ThermoGater affects wear-out because per-VR
 * utilisation is non-uniform (Fig. 13), and conjectures that
 * temperature-aware gating may *balance* aging since its
 * highly-utilised regulators live in cooler regions while wear-out
 * rates grow exponentially with temperature. The aging model
 * integrates damage = on-time x 2^((T - Tref)/delta) per regulator;
 * this bench compares the resulting damage balance across policies.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main()
{
    bench::banner("aging (Section 7 discussion)",
                  "per-VR wear-out damage under the policies "
                  "(lu_ncb); imbalance = max/mean damage");

    auto &simulation = bench::evaluationSim();
    const auto &profile = workload::profileByName("lu_ncb");

    sim::RecordOptions opts;
    opts.noiseSamplesOverride = 0;

    TextTable t({"policy", "mean damage", "max damage", "imbalance",
                 "hottest VR mean T proxy"});
    for (auto kind :
         {core::PolicyKind::AllOn, core::PolicyKind::Naive,
          core::PolicyKind::OracT, core::PolicyKind::OracV,
          core::PolicyKind::PracVT}) {
        auto r = simulation.run(profile, kind, opts);
        double mean = 0.0;
        double mx = 0.0;
        for (double d : r.vrAging) {
            mean += d;
            mx = std::max(mx, d);
        }
        mean /= static_cast<double>(r.vrAging.size());
        t.addRow({core::policyName(kind),
                  TextTable::num(mean * 1e3, 3),
                  TextTable::num(mx * 1e3, 3),
                  TextTable::num(r.agingImbalance, 2),
                  TextTable::num(r.maxTmax, 1)});
    }
    t.print(std::cout);

    std::printf("\n(damage in equivalent stress-ms at the reference "
                "temperature; OracV concentrates wear on the hot "
                "logic-side regulators, thermally-aware gating "
                "spreads it)\n");
    return 0;
}
