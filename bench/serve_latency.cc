/**
 * @file
 * Request-latency ladder for the persistent sweep server: what does
 * keeping a warm daemon buy over launching a fresh process per sweep?
 *
 * Three legs, all executing the identical quick mini-chip grid with
 * result memoization enabled:
 *
 *   cold process   re-exec this binary with a fresh, empty cache
 *                  directory — the full price of a one-shot CLI run
 *                  (process start, context build, every cell computed)
 *   daemon cold    first request against a freshly started tg::serve
 *                  daemon — same compute, but the process is already up
 *   daemon warm    repeat of the same request — answered from the
 *                  daemon's warm ArtifactStore and context cache
 *
 * Every leg's grid is checksummed over cache::encodeRunResult, and the
 * bench exits non-zero unless all legs are bit-identical AND the warm
 * daemon beats the cold process by >= 10x (the serve subsystem's
 * headline contract).
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

#include "bench_common.hh"
#include "cache/serialize.hh"
#include "cache/store.hh"
#include "common/bytes.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "shard/worker.hh"
#include "sim/sweep.hh"

namespace {

using namespace tg;

const std::vector<std::string> kBenchmarks = {"rayt", "fft", "lu_ncb",
                                              "water_s"};
const std::vector<core::PolicyKind> kPolicies = {
    core::PolicyKind::AllOn, core::PolicyKind::OracT};

/** The ladder's shared config: quick mini-chip run, memoization on. */
sim::SimConfig ladderConfig(const std::string &cacheDir)
{
    sim::SimConfig cfg;
    cfg.noiseSamples = 4;
    cfg.profilingEpochs = 8;
    cfg.memoizeResults = true;
    cfg.cacheDir = cacheDir;
    return cfg;
}

double secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** FNV-1a over every cell's bit-exact encoding, in canonical order. */
std::uint64_t gridChecksum(const sim::SweepResult &grid)
{
    std::vector<std::uint8_t> all;
    for (const auto &row : grid.results)
        for (const auto &cell : row) {
            const std::vector<std::uint8_t> enc =
                cache::encodeRunResult(cell);
            all.insert(all.end(), enc.begin(), enc.end());
        }
    return bytes::fnv1a(all.data(), all.size());
}

/** Child mode: one fresh-process sweep; prints the grid checksum. */
int coldChild(const std::string &cacheDir, int jobs)
{
    floorplan::Chip chip = floorplan::buildMiniChip(1);
    sim::Simulation simulation(chip, ladderConfig(cacheDir));
    const sim::SweepResult grid = sim::runSweep(
        simulation, kBenchmarks, kPolicies, false, jobs);
    std::printf("checksum=%016" PRIx64 "\n", gridChecksum(grid));
    return 0;
}

#ifdef __unix__

std::string selfPath(const char *argv0)
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

/**
 * Run one cold-process leg: re-exec this binary in --cold-child mode
 * against a fresh empty cache directory, capturing its checksum line.
 * Returns the wall time of the whole child (negative on failure).
 */
double runColdProcess(const std::string &binary, int jobs,
                      std::uint64_t &checksum)
{
    char dirTemplate[] = "/tmp/tg_serve_bench_cold.XXXXXX";
    if (!::mkdtemp(dirTemplate)) {
        std::perror("mkdtemp");
        return -1.0;
    }
    const std::string dir = dirTemplate;
    const std::string cmd = "'" + binary + "' --cold-child '" + dir +
                            "' --jobs " + std::to_string(jobs);

    const auto start = std::chrono::steady_clock::now();
    FILE *pipe = ::popen(cmd.c_str(), "r");
    if (!pipe) {
        std::perror("popen");
        std::filesystem::remove_all(dir);
        return -1.0;
    }
    char line[128] = {0};
    const bool gotLine = std::fgets(line, sizeof line, pipe) != nullptr;
    const int status = ::pclose(pipe);
    const double elapsed = secondsSince(start);
    std::filesystem::remove_all(dir);

    if (status != 0 || !gotLine ||
        std::sscanf(line, "checksum=%" SCNx64, &checksum) != 1) {
        std::fprintf(stderr,
                     "serve_latency: cold child failed (status %d)\n",
                     status);
        return -1.0;
    }
    return elapsed;
}

int runLadder(const std::string &binary, int jobs, int iterations)
{
    bench::banner("serve latency ladder",
                  "cold process vs warm tg::serve daemon, quick "
                  "mini-chip grid (" +
                      std::to_string(kBenchmarks.size() *
                                     kPolicies.size()) +
                      " cells, jobs " + std::to_string(jobs) + ")");

    // --- leg 1: fresh process per request ---------------------------
    std::uint64_t coldChecksum = 0;
    double coldBest = -1.0;
    for (int i = 0; i < iterations; ++i) {
        std::uint64_t sum = 0;
        const double t = runColdProcess(binary, jobs, sum);
        if (t < 0)
            return 1;
        if (i == 0)
            coldChecksum = sum;
        else if (sum != coldChecksum) {
            std::fprintf(stderr,
                         "serve_latency: cold-process checksums "
                         "disagree across iterations\n");
            return 1;
        }
        std::printf("cold process  iter %d   %8.1f ms\n", i,
                    t * 1e3);
        if (coldBest < 0 || t < coldBest)
            coldBest = t;
    }

    // --- legs 2+3: one daemon, cold then warm requests --------------
    char dirTemplate[] = "/tmp/tg_serve_bench_daemon.XXXXXX";
    if (!::mkdtemp(dirTemplate)) {
        std::perror("mkdtemp");
        return 1;
    }
    const std::string daemonDir = dirTemplate;

    serve::ServerOptions options;
    options.socketPath =
        daemonDir + "/tg_serve_bench." + std::to_string(::getpid()) +
        ".sock";
    options.jobs = jobs;
    serve::Server server(options);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "serve_latency: %s\n", err.c_str());
        std::filesystem::remove_all(daemonDir);
        return 1;
    }

    serve::SweepMsg request;
    request.setup = shard::encodeBasicSetup(
        shard::ChipKind::Mini, 1, ladderConfig(daemonDir));
    request.benchmarks = kBenchmarks;
    for (auto pk : kPolicies)
        request.policies.push_back(static_cast<std::uint32_t>(pk));
    request.jobs = static_cast<std::uint32_t>(jobs);

    serve::Client client;
    if (!client.connect(server.socketPath(), &err)) {
        std::fprintf(stderr, "serve_latency: %s\n", err.c_str());
        return 1;
    }

    auto servedSweep = [&](double &elapsed,
                           std::uint64_t &checksum) -> bool {
        sim::SweepResult grid;
        const auto start = std::chrono::steady_clock::now();
        if (!client.sweep(request, grid, &err)) {
            std::fprintf(stderr, "serve_latency: %s\n", err.c_str());
            return false;
        }
        elapsed = secondsSince(start);
        checksum = gridChecksum(grid);
        return true;
    };

    double daemonCold = 0;
    std::uint64_t daemonColdSum = 0;
    if (!servedSweep(daemonCold, daemonColdSum))
        return 1;
    std::printf("daemon cold            %8.1f ms\n", daemonCold * 1e3);

    double warmBest = -1.0;
    std::uint64_t warmSum = 0;
    for (int i = 0; i < iterations; ++i) {
        double t = 0;
        std::uint64_t sum = 0;
        if (!servedSweep(t, sum))
            return 1;
        if (i == 0)
            warmSum = sum;
        else if (sum != warmSum) {
            std::fprintf(stderr, "serve_latency: warm checksums "
                                 "disagree across repeats\n");
            return 1;
        }
        std::printf("daemon warm   iter %d   %8.1f ms\n", i, t * 1e3);
        if (warmBest < 0 || t < warmBest)
            warmBest = t;
    }

    // The warm edge comes from the daemon's caches — show them.
    serve::StatsReplyMsg stats;
    if (client.stats(stats, &err)) {
        std::printf("\ndaemon counters: sweeps=%" PRIu64
                    " cells=%" PRIu64 " contexts built=%" PRIu64
                    " reused=%" PRIu64 "\n",
                    stats.requestsSweep, stats.cellsServed,
                    stats.contextsBuilt, stats.contextsReused);
        std::printf("%s\n", stats.store.describe().c_str());
        for (int k = 0; k < cache::kArtifactKinds; ++k) {
            const auto &pk =
                stats.store.kind[static_cast<std::size_t>(k)];
            std::printf("  %-11s hits=%" PRIu64 " misses=%" PRIu64
                        " inserts=%" PRIu64 " bytes=%" PRIu64
                        " evictions=%" PRIu64 "\n",
                        cache::artifactKindName(
                            static_cast<cache::ArtifactKind>(k)),
                        pk.hits, pk.misses, pk.inserts, pk.bytes,
                        pk.evictions);
        }
    }

    client.close();
    server.requestStop();
    server.wait();
    std::filesystem::remove_all(daemonDir);

    // --- verdicts ---------------------------------------------------
    int failures = 0;
    if (daemonColdSum != coldChecksum || warmSum != coldChecksum) {
        std::fprintf(stderr,
                     "serve_latency: MISMATCH — served grids are not "
                     "bit-identical to the cold process "
                     "(cold=%016" PRIx64 " daemon=%016" PRIx64
                     " warm=%016" PRIx64 ")\n",
                     coldChecksum, daemonColdSum, warmSum);
        ++failures;
    } else {
        std::printf("\nbit-identity: all legs agree "
                    "(checksum %016" PRIx64 ")\n",
                    coldChecksum);
    }

    const double ratio = warmBest > 0 ? coldBest / warmBest : 0.0;
    std::printf("ladder: cold process %.1f ms | daemon cold %.1f ms "
                "| daemon warm %.1f ms\n",
                coldBest * 1e3, daemonCold * 1e3, warmBest * 1e3);
    std::printf("warm daemon speedup over cold process: %.1fx\n",
                ratio);
    if (ratio < 10.0) {
        std::fprintf(stderr,
                     "serve_latency: FAIL — warm daemon must be >= "
                     "10x faster than a cold process\n");
        ++failures;
    }
    return failures ? 1 : 0;
}

#endif // __unix__

} // namespace

int main(int argc, char **argv)
{
    const int jobs = [&] {
        const int j = bench::parseJobs(argc, argv);
        return j > 0 ? j : 4;
    }();
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--cold-child") && i + 1 < argc)
            return coldChild(argv[i + 1], jobs);

#ifdef __unix__
    const int iterations =
        bench::parseIntFlag(argc, argv, "--iters", 3);
    return runLadder(selfPath(argv[0]), jobs, iterations);
#else
    std::printf("serve_latency: skipped (requires a POSIX host)\n");
    return 0;
#endif
}
