/**
 * @file
 * Fig. 10: maximum thermal gradient (max spatial temperature
 * difference) per benchmark under all eight schemes. Paper shape:
 * all-on raises the gradient ~79% over off-chip; OracT trims ~11%
 * from all-on; OracV roughly doubles it; PracT lands within ~3% of
 * OracT.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"

using namespace tg;

int
main(int argc, char **argv)
{
    bench::banner("Fig. 10",
                  "maximum thermal gradient (degC) per policy");

    auto &simulation = bench::evaluationSim();
    auto sweep = sim::runSweep(simulation, {}, {}, true,
                               bench::parseJobs(argc, argv));

    std::vector<std::string> header = {"benchmark"};
    for (auto k : sweep.policies)
        header.push_back(core::policyName(k));
    TextTable t(header);
    for (const auto &b : sweep.benchmarks) {
        std::vector<std::string> row = {b};
        for (auto k : sweep.policies)
            row.push_back(
                TextTable::num(sweep.at(b, k).maxGradient, 1));
        t.addRow(std::move(row));
    }
    std::vector<std::string> avg = {"AVG"};
    for (auto k : sweep.policies)
        avg.push_back(TextTable::num(
            sweep.average(k,
                          [](const sim::RunResult &r) {
                              return r.maxGradient;
                          }),
            1));
    t.addRow(std::move(avg));
    t.print(std::cout);

    auto mean = [&](core::PolicyKind k) {
        return sweep.average(
            k, [](const sim::RunResult &r) { return r.maxGradient; });
    };
    double all_on = mean(core::PolicyKind::AllOn);
    std::printf("\nheadline ratios (avg): all-on vs off-chip %+0.1f%% "
                "(paper +79.4%%); Naive vs all-on %+0.1f%% (paper "
                "+12.5%%); OracT vs all-on %+0.1f%% (paper -10.9%%); "
                "OracV vs all-on %+0.1f%% (paper +96.3%%); PracT vs "
                "OracT %+0.1f%% (paper +3%%)\n",
                100.0 * (all_on / mean(core::PolicyKind::OffChip) -
                         1.0),
                100.0 * (mean(core::PolicyKind::Naive) / all_on - 1.0),
                100.0 * (mean(core::PolicyKind::OracT) / all_on - 1.0),
                100.0 * (mean(core::PolicyKind::OracV) / all_on - 1.0),
                100.0 * (mean(core::PolicyKind::PracT) /
                             mean(core::PolicyKind::OracT) -
                         1.0));
    return 0;
}
