/**
 * @file
 * Input-side (global grid / C4 pad) droop under gating.
 *
 * The paper analyses voltage noise on the *local* grids only; the
 * global grid feeding the regulators (through the C4 pads, paper
 * footnotes 3-4) also droops, and gating concentrates the input
 * current on fewer regulator sites. This bench quantifies that
 * input-side effect and shows it stays an order of magnitude below
 * the local-grid noise — the justification for the paper's focus.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "pdn/global_grid.hh"
#include "power/model.hh"
#include "uarch/core_model.hh"
#include "vreg/design.hh"
#include "vreg/network.hh"

using namespace tg;

int
main()
{
    bench::banner("global grid (input-side) droop",
                  "C4-pad grid droop: all-on vs gated input current "
                  "distribution");

    const auto &chip = bench::evaluationChip();
    pdn::GlobalGrid grid(chip);
    power::PowerModel pm(chip);
    auto design = vreg::fivrDesign();

    TextTable t({"benchmark", "all-on max droop (%)",
                 "gated max droop (%)", "gated mean (%)",
                 "input power (W)"});
    // All six current maps (3 benchmarks x {all-on, gated}) collect
    // first, then solve through ONE multi-RHS factorization pass —
    // the blocked path the fig12 heatmaps use too.
    std::vector<std::vector<Amperes>> maps;
    std::vector<const char *> names;
    std::vector<double> input_powers;
    for (const char *bench_name : {"chol", "lu_ncb", "rayt"}) {
        const auto &profile = workload::profileByName(bench_name);
        auto trace = uarch::buildActivityTrace(chip, profile, 3);
        auto bp = pm.dynamicFrame(
            trace.frames[trace.frames.size() / 2]);
        for (std::size_t b = 0; b < bp.size(); ++b)
            bp[b] += pm.leakage(static_cast<int>(b), 65.0);

        // Per-domain currents and the two gating configurations.
        std::vector<Watts> vr_in_all(chip.plan.vrs().size(), 0.0);
        std::vector<Watts> vr_in_gated(chip.plan.vrs().size(), 0.0);
        double input_total = 0.0;
        for (const auto &dom : chip.plan.domains()) {
            vreg::RegulatorNetwork net(
                design, static_cast<int>(dom.vrs.size()));
            net.setVout(chip.params.vdd);
            Amperes demand = pm.domainCurrent(bp, dom.id);
            auto all_on =
                net.evaluate(demand, static_cast<int>(dom.vrs.size()));
            auto gated = net.evaluateGated(demand);
            double p_out = demand * chip.params.vdd;
            double in_all = p_out + all_on.plossTotal;
            double in_gated = p_out + gated.plossTotal;
            input_total += in_gated;
            for (std::size_t l = 0; l < dom.vrs.size(); ++l)
                vr_in_all[static_cast<std::size_t>(dom.vrs[l])] =
                    in_all / static_cast<double>(dom.vrs.size());
            for (int l = 0; l < gated.active; ++l)
                vr_in_gated[static_cast<std::size_t>(
                    dom.vrs[static_cast<std::size_t>(l)])] =
                    in_gated / gated.active;
        }

        maps.push_back(grid.nodeCurrents(bp, vr_in_all));
        maps.push_back(grid.nodeCurrents(bp, vr_in_gated));
        names.push_back(bench_name);
        input_powers.push_back(input_total);
    }

    std::vector<pdn::GlobalDroop> droops;
    grid.solveBatch(maps, droops);
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &d_all = droops[2 * i];
        const auto &d_gated = droops[2 * i + 1];
        t.addRow({names[i],
                  TextTable::num(d_all.maxDroopFrac * 100.0, 3),
                  TextTable::num(d_gated.maxDroopFrac * 100.0, 3),
                  TextTable::num(d_gated.meanDroopFrac * 100.0, 3),
                  TextTable::num(input_powers[i], 1)});
    }
    t.print(std::cout);

    std::printf("\n(compare against the local-grid noise of Fig. 11, "
                "~5-25%% of Vdd: the input side stays an order of "
                "magnitude quieter, as the paper's local-only "
                "analysis assumes)\n");
    return 0;
}
